"""Command-line interface: ``python -m repro.experiments``.

Subcommands::

    list [--json]                 show every registered experiment + scenarios
                                  (--json: machine-readable ids, scenario
                                  counts, spec hashes, per-experiment engines,
                                  targeted-traffic flag, engine capability
                                  map and max_n for tooling/CI)
    run E01 E16 E20 [--all]       run experiments (sharded over --jobs workers)
        --jobs N                  worker processes (default 1)
        --json PATH               write the stable JSON report
        --cache DIR               on-disk result cache keyed by spec hash
        --engine NAME             pin engine-aware scenarios to one simulator
                                  engine (reference / indexed / batch /
                                  columnar)
        --adversary SPEC          pin adversary-aware scenarios to one fault
                                  policy (none / drop:RATE / crash:N@R,... /
                                  budget:BITS)
        --scenario SUBSTR         run only scenarios whose name contains the
                                  substring (skips cross-scenario verify
                                  hooks; the CI smoke knob for heavy tiers)
        --strip-timing            drop wall-time fields from the JSON so
                                  repeated runs are byte-identical
        --no-tables               suppress the reproduced tables

Exit status is non-zero when any experiment invariant fails, so the ``run``
subcommand doubles as a CI smoke check.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.distributed.adversary import build_adversary
from repro.distributed.simulator import ENGINES
from repro.experiments import registry
from repro.experiments.registry import ExperimentCheckError
from repro.experiments.reporting import experiment_table
from repro.experiments.runner import SCHEMA, ResultCache, run_experiments, strip_timing


def _scenario_n(spec) -> int | None:
    """Best-effort problem size of a scenario: its ``n`` param, else the
    first argument of its ``graph`` family tuple (the ``n`` slot for every
    sized family in :data:`repro.experiments.families.FAMILIES`)."""
    n = spec.param("n")
    if isinstance(n, int):
        return n
    graph = spec.param("graph")
    if isinstance(graph, tuple) and len(graph) >= 2 and isinstance(graph[1], int):
        return graph[1]
    return None


def _cmd_list(args: argparse.Namespace) -> int:
    if args.json:
        # Machine-readable listing for tooling/CI: ids, scenario counts and
        # spec hashes are enough to detect registry drift without running
        # anything; engines/max_n let tooling pick tiers (e.g. "the biggest
        # columnar experiment") without parsing scenario names.  "targeted"
        # says whether the workload issues ctx.send, and "engine_support"
        # maps each engine to whether it can carry that traffic shape —
        # all True since the targeted fast path, kept explicit so tooling
        # never has to hard-code engine capabilities.
        entries = []
        for identifier in registry.experiment_ids():
            experiment = registry.get_experiment(identifier)
            sizes = [
                n for spec in experiment.scenarios if (n := _scenario_n(spec)) is not None
            ]
            entries.append(
                {
                    "id": experiment.id,
                    "title": experiment.title,
                    "scenario_count": len(experiment.scenarios),
                    "targeted": experiment.targeted,
                    "engine_support": {engine: True for engine in ENGINES},
                    "engines": sorted(
                        {spec.engine for spec in experiment.scenarios if spec.engine}
                    ),
                    "max_n": max(sizes) if sizes else None,
                    "scenarios": [
                        {"name": spec.name, "spec_hash": spec.spec_hash()}
                        for spec in experiment.scenarios
                    ],
                }
            )
        json.dump({"schema": SCHEMA, "experiments": entries}, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    for identifier in registry.experiment_ids():
        experiment = registry.get_experiment(identifier)
        print(f"{experiment.id}  {experiment.title}")
        print(f"     {experiment.headline}")
        for spec in experiment.scenarios:
            print(f"     - {spec.name}  [{spec.spec_hash()}]")
    return 0


def _resolve_ids(args: argparse.Namespace) -> list[str]:
    if args.all:
        return registry.experiment_ids()
    if not args.experiments:
        raise SystemExit("run: name experiments (e.g. E01 E16 E17) or pass --all")
    return [identifier.upper() for identifier in args.experiments]


def _cmd_run(args: argparse.Namespace) -> int:
    identifiers = _resolve_ids(args)
    if args.adversary is not None:
        try:
            # Validate (and canonicalise) the spec up front so a typo fails
            # before any scenario runs, with the parser's message.
            args.adversary = build_adversary(args.adversary).spec()
        except ValueError as error:
            print(f"run: {error}", file=sys.stderr)
            return 2
    cache = ResultCache(args.cache) if args.cache else None
    started = time.perf_counter()
    try:
        report = run_experiments(
            identifiers,
            jobs=args.jobs,
            cache=cache,
            engine=args.engine,
            adversary=args.adversary,
            scenario_filter=args.scenario,
        )
    except ExperimentCheckError as error:
        print(f"experiment check failed: {error}", file=sys.stderr)
        return 1
    except ValueError as error:
        # e.g. a --scenario substring matching nothing.
        print(f"run: {error}", file=sys.stderr)
        return 2
    except KeyError as error:
        # e.g. a mistyped experiment id — the registry message lists the
        # known ids; surface it cleanly instead of a traceback.
        print(str(error).strip('"\''), file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    if not args.no_tables:
        for entry in report["experiments"]:
            experiment = registry.get_experiment(entry["id"])
            results = [scenario["result"] for scenario in entry["scenarios"]]
            experiment_table(experiment, results)
        print()

    scenario_count = sum(len(entry["scenarios"]) for entry in report["experiments"])
    cached_count = sum(
        1
        for entry in report["experiments"]
        for scenario in entry["scenarios"]
        if scenario["cached"]
    )
    print(
        f"ran {scenario_count} scenarios across {len(identifiers)} experiments "
        f"in {elapsed:.2f}s (jobs={args.jobs}, cached={cached_count})",
        file=sys.stderr,
    )

    if args.json:
        payload: dict[str, Any] = strip_timing(report) if args.strip_timing else report
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``python -m repro.experiments`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the E01-E20 experiment reproductions through the "
        "scenario registry and sharded runner.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lister = sub.add_parser("list", help="list registered experiments and scenarios")
    lister.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable listing (experiment ids, scenario "
        "counts, spec hashes) on stdout for tooling/CI consumption",
    )
    lister.set_defaults(func=_cmd_list)

    runner = sub.add_parser("run", help="run experiments and emit the JSON report")
    runner.add_argument("experiments", nargs="*", help="experiment ids, e.g. E01 E16 E17")
    runner.add_argument("--all", action="store_true", help="run every registered experiment")
    runner.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    runner.add_argument("--json", metavar="PATH", help="write the JSON report here")
    runner.add_argument(
        "--cache",
        metavar="DIR",
        help="on-disk result cache keyed by spec hash (keys cover spec "
        "contents only — clear the directory after code changes)",
    )
    runner.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="pin engine-aware scenarios to one simulator engine (the "
        "override becomes part of each spec, hence of its cache key); "
        "every engine carries both broadcast and targeted traffic, "
        "bit-for-bit",
    )
    runner.add_argument(
        "--adversary",
        metavar="SPEC",
        default=None,
        help="pin adversary-aware scenarios to one fault policy "
        "('none', 'drop:RATE[:SALT]', 'crash:NODE@ROUND[,...]', "
        "'budget:BITS'; the override becomes part of each spec, hence of "
        "its cache key)",
    )
    runner.add_argument(
        "--scenario",
        metavar="SUBSTR",
        default=None,
        help="run only scenarios whose name contains this substring; "
        "cross-scenario verify hooks are skipped and the report records "
        "the filter (CI smoke knob for heavy tiers such as E20)",
    )
    runner.add_argument(
        "--strip-timing",
        action="store_true",
        help="omit wall-time fields from the JSON (byte-identical across runs)",
    )
    runner.add_argument("--no-tables", action="store_true", help="suppress result tables")
    runner.set_defaults(func=_cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return args.func(args)
