"""Registry definitions for the baseline/ablation experiments E13-E15."""

from __future__ import annotations

from fractions import Fraction
from typing import Any

from repro.baselines import (
    baswana_sen_spanner,
    expected_size_bound,
    greedy_two_spanner,
    implied_approximation_ratio,
    take_all_spanner,
)
from repro.core import TwoSpannerOptions, run_two_spanner
from repro.experiments.families import build_graph
from repro.experiments.registry import Experiment, check, register
from repro.experiments.spec import ScenarioSpec
from repro.spanner import is_k_spanner


# --------------------------------------------------------------------------
# E13 — Baswana-Sen (2k-1)-spanners and the implied O(n^{1/k}) approximation
# --------------------------------------------------------------------------


def _run_e13(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    k = spec.param("k")
    n = graph.number_of_nodes()
    spanner = baswana_sen_spanner(graph, k=k, seed=k)
    check(is_k_spanner(graph, spanner, 2 * k - 1), f"{spec.name}: invalid (2k-1)-spanner")
    ratio = implied_approximation_ratio(graph, len(spanner))
    bound = expected_size_bound(n, k)
    yardstick = n ** (1.0 / k)
    check(len(spanner) <= 4 * bound, f"{spec.name}: size escapes the expected-size envelope")
    check(ratio <= 4 * yardstick, f"{spec.name}: implied ratio does not track n^(1/k)")
    return {
        "setting": spec.name,
        "m": graph.number_of_edges(),
        "size": len(spanner),
        "size_bound": bound,
        "implied_ratio": ratio,
        "yardstick": yardstick,
    }


def _verify_e13(results) -> dict[str, Any]:
    sizes = [r["size"] for r in results]
    check(sizes[0] >= sizes[1] >= sizes[2], "spanners do not get sparser as k grows")
    return {"sizes": sizes}


register(
    Experiment(
        id="E13",
        title="Baswana-Sen (2k-1)-spanners and the implied O(n^{1/k}) approximation",
        headline="spanner sizes vs the k*n^(1+1/k) bound as stretch grows",
        columns=(
            ("setting", "setting", None),
            ("m", "m", None),
            ("spanner size", "size", None),
            ("k*n^{1+1/k} bound", "size_bound", ".1f"),
            ("size/(n-1)", "implied_ratio", ".3f"),
            ("n^{1/k}", "yardstick", ".2f"),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E13",
                f"k={k} (stretch {2 * k - 1})",
                graph=("connected_gnp", 120, 0.25, 3),
                k=k,
            )
            for k in (1, 2, 3, 4)
        ],
        run_scenario=_run_e13,
        verify=_verify_e13,
    )
)


# --------------------------------------------------------------------------
# E14 — head-to-head comparison on a shared graph suite
# --------------------------------------------------------------------------


def _run_e14(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    distributed = run_two_spanner(
        graph,
        seed=spec.param("run_seed"),
        options=TwoSpannerOptions(densest_method="peeling"),
    )
    check(is_k_spanner(graph, distributed.edges, 2), f"{spec.name}: invalid 2-spanner")
    greedy = len(greedy_two_spanner(graph, method="peeling"))
    take_all = len(take_all_spanner(graph))
    floor = graph.number_of_nodes() - 1
    ratio = distributed.size / max(1, greedy)
    check(distributed.size <= take_all, f"{spec.name}: worse than take-all")
    check(distributed.size >= floor, f"{spec.name}: below the connectivity floor")
    check(ratio <= 4.0, f"{spec.name}: drifts from the greedy baseline")
    return {
        "workload": spec.name,
        "m": graph.number_of_edges(),
        "distributed": distributed.size,
        "greedy": greedy,
        "take_all": take_all,
        "floor": floor,
        "dist_over_greedy": ratio,
        "metrics": distributed.metrics,
    }


def _verify_e14(results) -> dict[str, Any]:
    # On the clique the savings are dramatic (take-all is ~n/2 times larger).
    clique = next(r for r in results if r["workload"] == "clique n=20")
    check(clique["take_all"] >= 4 * clique["distributed"], "clique savings missing")
    return {"worst_dist_over_greedy": max(r["dist_over_greedy"] for r in results)}


register(
    Experiment(
        id="E14",
        title="Distributed (Thm 1.3) vs Kortsarz-Peleg greedy vs take-all",
        headline="head-to-head 2-spanner sizes across a shared graph suite",
        targeted=True,
        columns=(
            ("workload", "workload", None),
            ("m", "m", None),
            ("distributed", "distributed", None),
            ("KP greedy", "greedy", None),
            ("take-all", "take_all", None),
            ("n-1 floor", "floor", None),
            ("dist/greedy", "dist_over_greedy", ".3f"),
        ),
        scenarios=[
            ScenarioSpec.make("E14", name, graph=graph, run_seed=5)
            for name, graph in [
                ("path n=30", ("path", 30)),
                ("bipartite K5,6", ("complete_bipartite", 5, 6)),
                ("clique n=20", ("complete", 20)),
                ("gnp n=40 p=0.3", ("connected_gnp", 40, 0.3, 1)),
                ("gnp n=60 p=0.2", ("connected_gnp", 60, 0.2, 2)),
                ("cluster 4x8", ("cluster", 4, 8, 3)),
            ]
        ],
        run_scenario=_run_e14,
        verify=_verify_e14,
    )
)


# --------------------------------------------------------------------------
# E15 — ablations of the Section 4 design choices
# --------------------------------------------------------------------------

_E15_CONFIGS: list[tuple[str, dict[str, Any]]] = [
    ("paper defaults", {}),
    ("peeling densest star", {"densest_method": "peeling"}),
    ("no star re-selection rule", {"follow_paper_rule": False}),
    ("vote threshold 1/2", {"vote_fraction": (1, 2)}),
    ("star threshold rho/8", {"threshold_divisor": 8}),
]

_E15_WORKLOADS = [
    ("gnp n=30 p=0.3", ("connected_gnp", 30, 0.3, 7)),
    ("cluster 3x7", ("cluster", 3, 7, 8)),
]


def _options_from(spec: ScenarioSpec) -> TwoSpannerOptions:
    kwargs: dict[str, Any] = {}
    if spec.param("densest_method") is not None:
        kwargs["densest_method"] = spec.param("densest_method")
    if spec.param("follow_paper_rule") is not None:
        kwargs["follow_paper_rule"] = spec.param("follow_paper_rule")
    if spec.param("vote_fraction") is not None:
        numerator, denominator = spec.param("vote_fraction")
        kwargs["vote_fraction"] = Fraction(numerator, denominator)
    if spec.param("threshold_divisor") is not None:
        kwargs["threshold_divisor"] = spec.param("threshold_divisor")
    return TwoSpannerOptions(**kwargs)


def _run_e15(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    result = run_two_spanner(graph, seed=spec.param("run_seed"), options=_options_from(spec))
    check(is_k_spanner(graph, result.edges, 2), f"{spec.name}: invalid 2-spanner")
    return {
        "workload": spec.param("workload"),
        "configuration": spec.param("configuration"),
        "size": result.size,
        "iterations": result.iterations,
        "fallbacks": result.fallback_count,
    }


def _verify_e15(results) -> dict[str, Any]:
    defaults = {
        r["workload"]: r["size"] for r in results if r["configuration"] == "paper defaults"
    }
    for r in results:
        if r["configuration"] == "paper defaults":
            # Claim 4.4: the defaults never take the selection fallback branch.
            check(r["fallbacks"] == 0, f"{r['workload']}: defaults used the fallback branch")
        check(
            r["size"] <= 2 * defaults[r["workload"]] + 8,
            f"{r['workload']} / {r['configuration']}: ablation blew up the spanner",
        )
    return {"configurations": len(_E15_CONFIGS), "workloads": len(_E15_WORKLOADS)}


register(
    Experiment(
        id="E15",
        title="Ablations of the Section 4 design choices",
        headline="exact vs peeling densest stars, re-selection rule, vote thresholds",
        targeted=True,
        columns=(
            ("workload", "workload", None),
            ("configuration", "configuration", None),
            ("spanner size", "size", None),
            ("iterations", "iterations", None),
            ("selection fallbacks", "fallbacks", None),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E15",
                f"{wname} / {cname}",
                graph=graph,
                workload=wname,
                configuration=cname,
                run_seed=11,
                **config,
            )
            for wname, graph in _E15_WORKLOADS
            for cname, config in _E15_CONFIGS
        ],
        run_scenario=_run_e15,
        verify=_verify_e15,
    )
)
