"""Registry definitions for the substrate experiments: E16 (indexed-engine
throughput), E17 (Congested Clique vs CONGEST) and E18 (batch-engine scale
sweep).

E16 and E18 measure wall time by design, so their timing lives under
``timing.*`` result keys — the one namespace the determinism contract
excludes (see :func:`repro.experiments.runner.strip_timing`); physics
(rounds, edges, metrics) must still be bit-for-bit identical across engines
and runs.  The engine-speedup *assertions* stay in the pytest wrappers
(``benchmarks/bench_e16_simulator_throughput.py`` /
``benchmarks/bench_e18_batch_engine.py``) where the environment knobs live;
the registry ``verify`` hooks only pin physics equality so CLI sweeps on
loaded machines never flake.

E17 compares edge sets across scenarios through a canonical hash instead of
embedding every edge list in the report.  E18 pushes a pure-broadcast
flood-max workload (``repro.core.flood_max``) to n >= 20000 on the
``batch`` engine, with an indexed-engine twin at n = 20000 as the
differential/throughput baseline.
"""

from __future__ import annotations

import hashlib
import math
import time
from typing import Any

from repro.core import (
    clique_spanner_round_bound,
    run_clique_two_spanner,
    run_flood_max,
    run_two_spanner,
)
from repro.distributed import congest_model
from repro.experiments.families import build_graph
from repro.experiments.registry import Experiment, check, register
from repro.experiments.spec import ScenarioSpec
from repro.spanner import is_k_spanner


def edges_digest(edges) -> str:
    """Canonical content hash of an undirected edge set."""
    canonical = sorted(tuple(sorted(edge)) for edge in edges)
    return hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------
# E16 — simulator throughput: rounds/sec of the indexed execution core
# --------------------------------------------------------------------------


def _run_e16(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    engine = spec.engine or "indexed"
    start = time.perf_counter()
    result = run_two_spanner(graph, seed=spec.param("run_seed"), engine=engine)
    elapsed = time.perf_counter() - start
    return {
        "engine": engine,
        "rounds": result.rounds,
        "edges": result.size,
        "metrics": result.metrics,
        "timing": {"elapsed_s": elapsed, "rounds_per_sec": result.rounds / elapsed},
    }


def _verify_e16(results) -> dict[str, Any]:
    reference, indexed = results
    # Identical physics on both engines; speed is asserted by the benchmark
    # wrapper (E16_MIN_SPEEDUP), not here, so CLI sweeps stay noise-proof.
    for key in reference:
        if key.startswith("timing."):
            continue
        if key == "engine":
            continue
        check(
            reference[key] == indexed[key],
            f"engines disagree on {key}: {reference[key]!r} != {indexed[key]!r}",
        )
    return {"rounds": reference["rounds"], "edges": reference["edges"]}


register(
    Experiment(
        id="E16",
        title="simulator throughput on G(600, 0.05) two-spanner (seed 1)",
        headline="rounds/sec of the indexed engine vs the seed reference engine",
        targeted=True,
        columns=(
            ("engine", "engine", None),
            ("rounds", "rounds", None),
            ("spanner edges", "edges", None),
            ("seconds", "timing.elapsed_s", ".3f"),
            ("rounds/sec", "timing.rounds_per_sec", ".3f"),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E16", engine, graph=("gnp", 600, 0.05, 7), engine=engine, run_seed=1
            )
            for engine in ("reference", "indexed")
        ],
        run_scenario=_run_e16,
        verify=_verify_e16,
    )
)


# --------------------------------------------------------------------------
# E17 — Congested Clique 2-spanner vs the paper's CONGEST 2-spanner
# --------------------------------------------------------------------------

_E17_INSTANCES = [(48, 0.20, 3), (96, 0.20, 5)]
_E17_SEED = 2
# rounds <= C_LOG * log2(n): holds since 2*ceil(log2 n)+2 <= 3*log2 n, n >= 16
_C_LOG = 3


def _run_e17(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    n = graph.number_of_nodes()
    variant = spec.param("variant")
    if variant == "congest":
        result = run_two_spanner(
            graph, seed=spec.param("run_seed"), model=congest_model(n, enforce=False)
        )
    else:
        engine = spec.engine or "indexed"
        result = run_clique_two_spanner(graph, seed=spec.param("run_seed"), engine=engine)
        check(
            result.rounds <= _C_LOG * math.log2(n),
            f"{spec.name}: clique spanner used {result.rounds} rounds; "
            f"bound is {_C_LOG}*log2(n) = {_C_LOG * math.log2(n):.1f}",
        )
        check(
            result.rounds == clique_spanner_round_bound(n),
            f"{spec.name}: round count is not exactly 2*ceil(log2 n)+2",
        )
    check(is_k_spanner(graph, result.edges, 2), f"{spec.name}: invalid 2-spanner")
    return {
        "n": n,
        "m": graph.number_of_edges(),
        "model": variant if variant == "congest" else f"clique ({spec.engine or 'indexed'})",
        "instance": spec.param("instance"),
        "variant": variant,
        "rounds": result.rounds,
        "edges": len(result.edges),
        "edges_digest": edges_digest(result.edges),
        "metrics": result.metrics,
    }


def _verify_e17(results) -> dict[str, Any]:
    summary: dict[str, Any] = {}
    for n, _, _ in _E17_INSTANCES:
        instance = f"n={n}"
        group = {r["variant"]: r for r in results if r["instance"] == instance}
        indexed, reference = group["clique_indexed"], group["clique_reference"]
        for key in indexed:
            if key == "variant" or key == "model":
                continue
            check(
                indexed[key] == reference[key],
                f"{instance}: clique engines disagree on {key}",
            )
        # The whole point of the clique model: exponentially fewer rounds.
        check(
            indexed["rounds"] < group["congest"]["rounds"],
            f"{instance}: clique model not faster than CONGEST",
        )
        summary[f"{instance}.clique_rounds"] = indexed["rounds"]
        summary[f"{instance}.congest_rounds"] = group["congest"]["rounds"]
    return summary


register(
    Experiment(
        id="E17",
        title="Congested Clique vs CONGEST 2-spanner (G(n, p), both fixed-seed)",
        headline="O(log n)-round clique 2-spanner vs the CONGEST algorithm, both engines",
        targeted=True,
        columns=(
            ("n", "n", None),
            ("m", "m", None),
            ("model", "model", None),
            ("rounds", "rounds", None),
            ("spanner edges", "edges", None),
            ("bits", "metrics.bits_sent", None),
            ("violations", "metrics.bandwidth_violations", None),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E17",
                f"n={n} {variant}",
                graph=("gnp", n, p, graph_seed),
                instance=f"n={n}",
                variant=variant,
                engine=engine,
                run_seed=_E17_SEED,
            )
            for n, p, graph_seed in _E17_INSTANCES
            for variant, engine in [
                ("clique_indexed", "indexed"),
                ("clique_reference", "reference"),
                ("congest", None),
            ]
        ],
        run_scenario=_run_e17,
        verify=_verify_e17,
    )
)


# --------------------------------------------------------------------------
# E18 — batch-engine scale sweep: flood-max broadcast traffic at n >= 20000
# --------------------------------------------------------------------------

_E18_ROUNDS = 10
_E18_SEED = 3
_E18_GRAPHS = {
    # name -> (family tuple); p chosen for average degree ~10, and the
    # family's connect=True patch guarantees flood-max converges.
    "n=20000": ("sparse_connected_gnp", 20000, 0.0005, 18),
    "n=50000": ("sparse_connected_gnp", 50000, 0.0002, 19),
}


def _run_e18(spec: ScenarioSpec) -> dict[str, Any]:
    graph = build_graph(spec.param("graph"))
    n = graph.number_of_nodes()
    engine = spec.engine or "indexed"
    rounds = spec.param("rounds")
    start = time.perf_counter()
    result = run_flood_max(graph, rounds=rounds, seed=spec.param("run_seed"), engine=engine)
    elapsed = time.perf_counter() - start
    check(
        result.converged,
        f"{spec.name}: flood-max did not converge within {rounds} rounds",
    )
    check(
        result.leader == n - 1,
        f"{spec.name}: elected leader {result.leader!r}, expected the max label {n - 1}",
    )
    check(
        result.rounds == rounds,
        f"{spec.name}: used {result.rounds} rounds, the program budget is {rounds}",
    )
    messages = result.metrics.messages_sent
    return {
        "engine": engine,
        "n": n,
        "m": graph.number_of_edges(),
        "rounds": result.rounds,
        "leader": result.leader,
        "metrics": result.metrics,
        "timing": {
            "elapsed_s": elapsed,
            "messages_per_sec": messages / elapsed,
        },
    }


def _verify_e18(results) -> dict[str, Any]:
    batch20, indexed20, batch50 = results
    # Identical physics for batch vs indexed at n=20000; the batch-vs-indexed
    # throughput floor is asserted by the benchmark wrapper (E18_MIN_SPEEDUP),
    # not here, so CLI sweeps stay noise-proof.
    for key in batch20:
        if key.startswith("timing.") or key == "engine":
            continue
        check(
            batch20[key] == indexed20[key],
            f"n=20000: engines disagree on {key}: {batch20[key]!r} != {indexed20[key]!r}",
        )
    check(batch50["n"] >= 20000, "the scale scenario must cover n >= 20000")
    return {
        "n=20000.messages": batch20["metrics.messages_sent"],
        "n=50000.messages": batch50["metrics.messages_sent"],
        "n=50000.leader": batch50["leader"],
    }


register(
    Experiment(
        id="E18",
        title="batch-engine scale sweep: flood-max broadcast up to n=50000",
        headline="struct-of-arrays batch engine vs indexed on pure-broadcast traffic",
        columns=(
            ("n", "n", None),
            ("m", "m", None),
            ("engine", "engine", None),
            ("rounds", "rounds", None),
            ("messages", "metrics.messages_sent", None),
            ("seconds", "timing.elapsed_s", ".3f"),
            ("msg/sec", "timing.messages_per_sec", ".0f"),
        ),
        scenarios=[
            ScenarioSpec.make(
                "E18",
                f"{instance} {engine}",
                engine=engine,
                graph=_E18_GRAPHS[instance],
                rounds=_E18_ROUNDS,
                run_seed=_E18_SEED,
            )
            for instance, engine in [
                ("n=20000", "batch"),
                ("n=20000", "indexed"),
                ("n=50000", "batch"),
            ]
        ],
        run_scenario=_run_e18,
        verify=_verify_e18,
    )
)
