"""Exact and approximate densest-subgraph solvers.

The paper's 2-spanner algorithm needs, for every vertex ``v``, the densest
*v-star*: a subset ``T`` of ``v``'s neighbours maximising
``|E_H(T)| / weight(T)`` where ``E_H(T)`` are the still-uncovered edges with
both endpoints in ``T``.  This is exactly the (node-weighted) densest
subgraph problem on the graph induced on ``N(v)``, which the paper (following
Kortsarz-Peleg, Lemma 2.1 of [46]) solves with flow techniques [36].

Two solvers are provided:

* :func:`densest_subgraph_exact` — Goldberg's flow construction combined with
  Dinkelbach iteration, exact over ``fractions.Fraction``; this is the
  default used by the algorithms so that the *guaranteed* approximation
  ratios of the paper are genuinely exercised.
* :func:`densest_subgraph_peeling` — Charikar's greedy peeling
  2-approximation, used as a fast mode and in the E15 ablation benchmark.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from fractions import Fraction
from math import lcm

from repro.flow.dinic import MaxFlowNetwork

Node = Hashable
Edge = tuple[Node, Node]


def _normalise(
    nodes: Iterable[Node],
    edges: Iterable[Edge],
    node_weights: dict[Node, Fraction] | None,
) -> tuple[list[Node], list[Edge], dict[Node, Fraction]]:
    node_list = list(dict.fromkeys(nodes))
    node_set = set(node_list)
    edge_list = []
    seen = set()
    for u, v in edges:
        if u == v or u not in node_set or v not in node_set:
            continue
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        if key in seen:
            continue
        seen.add(key)
        edge_list.append(key)
    if node_weights is None:
        weights = {v: Fraction(1) for v in node_list}
    else:
        weights = {v: Fraction(node_weights.get(v, 1)) for v in node_list}
    for v, w in weights.items():
        if w < 0:
            raise ValueError(f"node weight for {v!r} must be non-negative, got {w}")
    zero = {v for v, w in weights.items() if w == 0}
    if zero:
        # A subset of zero-weight nodes containing an edge would have
        # unbounded density; callers (the weighted 2-spanner algorithm)
        # guarantee this never happens because weight-0 edges are taken into
        # the spanner up front.  Fail loudly rather than loop forever.
        for u, v in edge_list:
            if u in zero and v in zero:
                raise ValueError(
                    "densest subgraph is unbounded: zero-weight nodes "
                    f"{u!r} and {v!r} share an edge"
                )
    return node_list, edge_list, weights


def subgraph_density(
    subset: Iterable[Node], edges: Iterable[Edge], node_weights: dict[Node, Fraction] | None = None
) -> Fraction:
    """Density ``|E(subset)| / weight(subset)`` of a node subset (0 if empty)."""
    sub = set(subset)
    if not sub:
        return Fraction(0)
    count = sum(1 for u, v in edges if u in sub and v in sub)
    if node_weights is None:
        total = Fraction(len(sub))
    else:
        total = sum((Fraction(node_weights.get(v, 1)) for v in sub), Fraction(0))
    if total <= 0:
        if count == 0:
            return Fraction(0)
        raise ValueError("subset has positive edge count but zero weight")
    return Fraction(count) / total


def densest_subgraph_exact(
    nodes: Iterable[Node],
    edges: Iterable[Edge],
    node_weights: dict[Node, Fraction] | None = None,
) -> tuple[set[Node], Fraction]:
    """Exact (node-weighted) densest subgraph via Goldberg's flow construction.

    Returns ``(subset, density)`` with ``subset`` non-empty whenever ``nodes``
    is non-empty.  Dinkelbach iteration: repeatedly test the current best
    density ``g``; the flow network is built so that the minimum s-t cut
    equals ``2m - 2 * max_T (|E(T)| - g * w(T))``, hence a cut smaller than
    ``2m`` reveals a strictly denser subset.  Densities are exact rationals,
    so the iteration terminates (each step strictly increases the density and
    only finitely many subset densities exist).
    """
    node_list, edge_list, weights = _normalise(nodes, edges, node_weights)
    if not node_list:
        return set(), Fraction(0)
    if not edge_list:
        # Density 0; return the single lightest node as a canonical answer.
        best = min(node_list, key=lambda v: (weights[v], repr(v)))
        return {best}, Fraction(0)

    degree: dict[Node, int] = {v: 0 for v in node_list}
    for u, v in edge_list:
        degree[u] += 1
        degree[v] += 1
    m = len(edge_list)

    best_set = set(node_list)
    best_density = subgraph_density(best_set, edge_list, weights)

    while True:
        g = best_density
        candidate = _improving_subset(node_list, edge_list, degree, weights, m, g)
        if candidate is None:
            return best_set, best_density
        density = subgraph_density(candidate, edge_list, weights)
        if density <= best_density:
            # Cannot happen with exact arithmetic; guard against infinite loops.
            return best_set, best_density
        best_set, best_density = candidate, density


def _improving_subset(
    node_list: list[Node],
    edge_list: list[Edge],
    degree: dict[Node, int],
    weights: dict[Node, Fraction],
    m: int,
    g: Fraction,
) -> set[Node] | None:
    """A subset with density strictly above ``g``, or ``None`` if none exists.

    All capacities are rationals; scaling them by the least common multiple of
    their denominators turns the whole network into machine integers without
    changing anything observable: the residual graph stays a uniformly scaled
    copy at every step, so Dinic picks the same augmenting paths and the same
    source side of the minimum cut falls out.  Nodes enter the network as
    dense indices (source = -1, sink = -2) so the inner loops never hash
    caller labels.
    """
    index = {v: i for i, v in enumerate(node_list)}
    sink_caps = [2 * g * weights[v] for v in node_list]
    scale = 1
    for cap in sink_caps:
        scale = lcm(scale, cap.denominator)

    k = len(node_list)
    source = k
    sink = k + 1
    net = MaxFlowNetwork.indexed(k + 2)
    for i, v in enumerate(node_list):
        net.add_edge_indexed(source, i, degree[v] * scale)
        net.add_edge_indexed(i, sink, (sink_caps[i] * scale).numerator)
    for u, v in edge_list:
        ui, vi = index[u], index[v]
        net.add_edge_indexed(ui, vi, scale)
        net.add_edge_indexed(vi, ui, scale)
    cut_value = net.max_flow(source, sink)
    if cut_value >= 2 * m * scale:
        return None
    side = net.min_cut_source_side(source)
    subset = {node_list[i] for i in side if i < k}
    if not subset:
        return None
    return subset


def densest_subgraph_peeling(
    nodes: Iterable[Node],
    edges: Iterable[Edge],
    node_weights: dict[Node, Fraction] | None = None,
) -> tuple[set[Node], Fraction]:
    """Charikar's greedy peeling (2-approximation for the unweighted problem).

    Vertices are removed one at a time, always the one with the smallest
    ``degree / weight`` ratio; the densest prefix encountered is returned.
    For node-weighted inputs this is a natural heuristic generalisation (not
    a proven 2-approximation) and is only used in fast / ablation modes.
    """
    node_list, edge_list, weights = _normalise(nodes, edges, node_weights)
    if not node_list:
        return set(), Fraction(0)

    adjacency: dict[Node, set[Node]] = {v: set() for v in node_list}
    for u, v in edge_list:
        adjacency[u].add(v)
        adjacency[v].add(u)

    alive = set(node_list)
    degree = {v: len(adjacency[v]) for v in node_list}
    edges_alive = len(edge_list)
    weight_alive = sum((weights[v] for v in alive), Fraction(0))

    best_set = set(alive)
    best_density = (
        Fraction(edges_alive) / weight_alive if weight_alive > 0 else Fraction(0)
    )

    def peel_key(v: Node) -> tuple:
        # Zero-weight nodes are "free": peel them last (they never hurt density).
        if weights[v] == 0:
            return (1, Fraction(degree[v]), repr(v))
        return (0, Fraction(degree[v]) / weights[v], repr(v))

    order = sorted(node_list, key=repr)  # deterministic tie-breaking
    while len(alive) > 1:
        victim = min((v for v in order if v in alive), key=peel_key)
        for u in adjacency[victim]:
            if u in alive:
                degree[u] -= 1
                edges_alive -= 1
        alive.remove(victim)
        weight_alive -= weights[victim]
        if weight_alive > 0:
            density = Fraction(edges_alive) / weight_alive
            if density > best_density:
                best_density = density
                best_set = set(alive)
    return best_set, best_density


def densest_subgraph(
    nodes: Iterable[Node],
    edges: Iterable[Edge],
    node_weights: dict[Node, Fraction] | None = None,
    method: str = "exact",
) -> tuple[set[Node], Fraction]:
    """Dispatch to the exact or peeling solver (``method``: 'exact' | 'peeling')."""
    if method == "exact":
        return densest_subgraph_exact(nodes, edges, node_weights)
    if method == "peeling":
        return densest_subgraph_peeling(nodes, edges, node_weights)
    raise ValueError(f"unknown densest-subgraph method: {method!r}")
