"""Max-flow and densest-subgraph primitives used by the star computations."""

from repro.flow.densest import (
    densest_subgraph,
    densest_subgraph_exact,
    densest_subgraph_peeling,
    subgraph_density,
)
from repro.flow.dinic import MaxFlowNetwork, max_flow_min_cut

__all__ = [
    "MaxFlowNetwork",
    "densest_subgraph",
    "densest_subgraph_exact",
    "densest_subgraph_peeling",
    "max_flow_min_cut",
    "subgraph_density",
]
