"""Dinic's maximum-flow algorithm over arbitrary hashable node labels.

Capacities may be ``int``, ``float`` or :class:`fractions.Fraction`; the
densest-subgraph solver uses exact ``Fraction`` capacities so that star
densities (which are rationals) are computed without rounding error.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable
from fractions import Fraction

Node = Hashable

Number = int | float | Fraction


class MaxFlowNetwork:
    """A flow network with a residual-graph representation for Dinic's algorithm."""

    def __init__(self) -> None:
        self._index: dict[Node, int] = {}
        self._labels: list[Node] = []
        # adjacency: node index -> list of edge ids
        self._adj: list[list[int]] = []
        # edges stored flat: to-node, capacity, and the id of the reverse edge
        self._to: list[int] = []
        self._cap: list[Number] = []
        self._rev: list[int] = []

    def _node(self, label: Node) -> int:
        if label not in self._index:
            self._index[label] = len(self._labels)
            self._labels.append(label)
            self._adj.append([])
        return self._index[label]

    def add_node(self, label: Node) -> None:
        self._node(label)

    def add_edge(self, u: Node, v: Node, capacity: Number) -> None:
        """Add a directed edge u -> v with the given capacity (residual cap 0 back)."""
        if capacity < 0:
            raise ValueError("capacities must be non-negative")
        ui, vi = self._node(u), self._node(v)
        self._adj[ui].append(len(self._to))
        self._to.append(vi)
        self._cap.append(capacity)
        self._rev.append(len(self._to))
        self._adj[vi].append(len(self._to))
        self._to.append(ui)
        self._cap.append(0 if isinstance(capacity, int) else type(capacity)(0))
        self._rev.append(len(self._to) - 2)

    @classmethod
    def indexed(cls, n: int) -> "MaxFlowNetwork":
        """A network whose nodes are exactly the integers ``0..n-1``.

        Bulk construction for callers that already work with dense indices
        (the densest-subgraph solver): node registration is done up front, so
        :meth:`add_edge_indexed` touches no hash tables.
        """
        net = cls()
        net._labels = list(range(n))
        net._index = {i: i for i in range(n)}
        net._adj = [[] for _ in range(n)]
        return net

    def add_edge_indexed(self, ui: int, vi: int, capacity: int) -> None:
        """Add ``ui -> vi`` between preregistered indices (integer capacity)."""
        eid = len(self._to)
        self._adj[ui].append(eid)
        self._to.append(vi)
        self._cap.append(capacity)
        self._rev.append(eid + 1)
        self._adj[vi].append(eid + 1)
        self._to.append(ui)
        self._cap.append(0)
        self._rev.append(eid)

    # ------------------------------------------------------------------- flow
    def max_flow(self, source: Node, sink: Node) -> Number:
        """Compute the maximum s-t flow value (the network keeps the residual state)."""
        s, t = self._node(source), self._node(sink)
        if s == t:
            raise ValueError("source and sink must differ")
        flow: Number = 0
        while True:
            level = self._bfs_levels(s, t)
            if level[t] < 0:
                return flow
            it = [0] * len(self._adj)
            while True:
                pushed = self._dfs_push(s, t, None, level, it)
                if pushed is None:
                    break
                flow = flow + pushed

    def min_cut_source_side(self, source: Node) -> set[Node]:
        """After :meth:`max_flow`, the set of labels reachable from the source
        in the residual graph (i.e. the source side of a minimum cut)."""
        s = self._node(source)
        seen = {s}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for eid in self._adj[u]:
                if self._cap[eid] > 0 and self._to[eid] not in seen:
                    seen.add(self._to[eid])
                    queue.append(self._to[eid])
        return {self._labels[i] for i in seen}

    # ---------------------------------------------------------------- internals
    def _bfs_levels(self, s: int, t: int) -> list[int]:
        level = [-1] * len(self._adj)
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for eid in self._adj[u]:
                v = self._to[eid]
                if self._cap[eid] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level

    def _dfs_push(
        self,
        u: int,
        t: int,
        limit: Number | None,
        level: list[int],
        it: list[int],
    ) -> Number | None:
        """Push one augmenting path (blocking-flow style with iterator pruning)."""
        if u == t:
            return limit
        while it[u] < len(self._adj[u]):
            eid = self._adj[u][it[u]]
            v = self._to[eid]
            residual = self._cap[eid]
            if residual > 0 and level[v] == level[u] + 1:
                new_limit = residual if limit is None else min(limit, residual)
                pushed = self._dfs_push(v, t, new_limit, level, it)
                if pushed is not None and pushed > 0:
                    self._cap[eid] -= pushed
                    self._cap[self._rev[eid]] += pushed
                    return pushed
            it[u] += 1
        return None


def max_flow_min_cut(
    edges: list[tuple[Node, Node, Number]], source: Node, sink: Node
) -> tuple[Number, set[Node]]:
    """One-shot helper: build a network, compute max flow and a min cut.

    Returns ``(flow_value, source_side_of_min_cut)``.
    """
    net = MaxFlowNetwork()
    net.add_node(source)
    net.add_node(sink)
    for u, v, c in edges:
        net.add_edge(u, v, c)
    value = net.max_flow(source, sink)
    return value, net.min_cut_source_side(source)
