"""E9 — Theorem 1.1: the two-party simulation behind the round lower bound.

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_lowerbounds``, experiment ``E09``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e09_randomized_lower_bound(benchmark):
    bench_experiment(benchmark, "E09")
