"""E9 — Theorem 1.1: the two-party simulation behind the Omega(sqrt(n)/(sqrt(alpha) log n)) bound.

Measured: running the reference CONGEST protocol on G(ell, beta) with the
Alice/Bob partition of the proof, the bits crossing the cut (must be Omega(N)
for any correct algorithm), the cut size (Theta(ell)), the implied round
lower bound N/(cut * O(log n)) and the theorem's sqrt(n)/(sqrt(alpha) log n)
yardstick, as n grows.
"""

from common import fmt, print_table, record

from repro.lowerbounds import (
    build_construction_g,
    random_disjoint_instance,
    random_intersecting_instance,
    simulate_reduction,
    theorem_1_1_parameters,
)


def run_experiment():
    rows = []
    alpha = 1.0
    for n_target in (300, 700, 1500):
        ell, beta = theorem_1_1_parameters(n_target, alpha)
        n_bits = ell * ell
        for label, instance in (
            ("disjoint", random_disjoint_instance(n_bits, seed=n_target)),
            ("1 intersection", random_intersecting_instance(n_bits, 1, seed=n_target + 1)),
        ):
            cg = build_construction_g(ell, beta, instance)
            report = simulate_reduction(cg, alpha=alpha)
            assert report.decision_correct
            rows.append(
                [f"n'={n_target} ({label})", report.n, report.ell, report.beta,
                 report.cut_edges, report.cut_bits, report.disjointness_bits_needed,
                 report.rounds, fmt(report.implied_rounds_lower_bound),
                 fmt(report.theorem_rounds_lower_bound)]
            )
    return rows


def test_e09_randomized_lower_bound(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E9  Theorem 1.1: Alice/Bob simulation on G(ell, beta)  (alpha = 1)",
        ["instance", "n", "ell", "beta", "cut edges", "cut bits measured",
         "bits needed (Omega(N))", "protocol rounds", "implied LB rounds", "thm yardstick"],
        rows,
    )
    record(benchmark, rows=len(rows))
    for row in rows:
        # The reference protocol really ships Theta(N) bits across the cut.
        assert row[5] >= row[6] // 4
        # Cut stays Theta(ell): the construction is non-symmetric by design.
        assert row[4] == 3 * row[2]
    # Larger constructions force more cut communication (monotone in n).
    assert rows[-1][5] > rows[0][5]
