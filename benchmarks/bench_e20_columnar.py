"""E20 — columnar engine throughput guard: flood-max broadcast at n=20000.

The registry's E20 sweep (``repro.experiments.defs_megascale``) carries the
mega-scale points (n up to 10^6); this wrapper guards the *engine speedup*
that makes those points affordable, on the same n=20000 E18 graph both
tiers share as their differential anchor.

Methodology — steady-state delta-rounds: end-to-end wall time of a
flood-max run is dominated at small round counts by setup (n ``Random``
instances, contexts, CSR views), which is identical across engines and
would dilute the ratio.  So each engine is timed twice, at 45 and at 5
rounds (after a 3-round warmup), and the per-round cost is
``(t45 - t5) / 40`` — the setup cancels in the subtraction.  Throughput is
``2m / per_round`` messages/sec (every vertex broadcasts every round, so a
round moves exactly ``2m`` directed messages).

Measured on a quiet machine: columnar ~12x over batch, ~17M msg/s steady
state (the ISSUE targets >= 3x and >= 10M msg/s).  CI relaxes the ratio
floor via ``E20_MIN_SPEEDUP`` to absorb shared-runner noise;
``E20_MIN_MSGS_PER_SEC`` defaults to 0 (recorded, not asserted) because
absolute throughput varies with host hardware in a way a ratio does not.
"""

import os
import time

from repro.core.flood_max import run_flood_max
from repro.experiments.families import build_graph

# Measured ~12x on a quiet machine; CI sets E20_MIN_SPEEDUP lower to absorb
# shared-runner noise without losing the regression guard.
MIN_COLUMNAR_SPEEDUP = float(os.environ.get("E20_MIN_SPEEDUP", "3.0"))
MIN_MSGS_PER_SEC = float(os.environ.get("E20_MIN_MSGS_PER_SEC", "0"))

#: The E18/E20 shared anchor instance and seed (defs_substrate/defs_megascale).
_GRAPH = ("sparse_connected_gnp", 20000, 0.0005, 18)
_SEED = 3
_WARMUP_ROUNDS = 3
_SHORT_ROUNDS = 5
_LONG_ROUNDS = 45


def _steady_state_per_round(graph, engine: str) -> float:
    """Per-round seconds of ``engine`` on ``graph``, setup excluded."""
    run_flood_max(graph, rounds=_WARMUP_ROUNDS, seed=_SEED, engine=engine)
    timings = {}
    for rounds in (_SHORT_ROUNDS, _LONG_ROUNDS):
        start = time.perf_counter()
        result = run_flood_max(graph, rounds=rounds, seed=_SEED, engine=engine)
        timings[rounds] = time.perf_counter() - start
        # Only the long run covers the diameter; the short run exists purely
        # to subtract the setup cost.
        if rounds >= _LONG_ROUNDS:
            assert result.converged
            assert result.leader == graph.number_of_nodes() - 1
    return (timings[_LONG_ROUNDS] - timings[_SHORT_ROUNDS]) / (
        _LONG_ROUNDS - _SHORT_ROUNDS
    )


def test_e20_columnar_engine(benchmark):
    graph = build_graph(_GRAPH)
    msgs_per_round = 2 * graph.number_of_edges()

    def measure():
        return {
            engine: _steady_state_per_round(graph, engine)
            for engine in ("batch", "columnar")
        }

    per_round = benchmark.pedantic(measure, rounds=1, iterations=1)
    throughput = {
        engine: msgs_per_round / seconds for engine, seconds in per_round.items()
    }
    speedup = throughput["columnar"] / throughput["batch"]
    benchmark.extra_info.update(
        {
            "msgs_per_round": msgs_per_round,
            "batch_msgs_per_sec": throughput["batch"],
            "columnar_msgs_per_sec": throughput["columnar"],
            "speedup": speedup,
        }
    )
    print(
        f"\nE20 steady state: batch {throughput['batch']:,.0f} msg/s, "
        f"columnar {throughput['columnar']:,.0f} msg/s ({speedup:.2f}x)"
    )
    assert speedup >= MIN_COLUMNAR_SPEEDUP, (
        f"columnar engine only {speedup:.2f}x over batch "
        f"(required {MIN_COLUMNAR_SPEEDUP}x)"
    )
    assert throughput["columnar"] >= MIN_MSGS_PER_SEC, (
        f"columnar throughput {throughput['columnar']:,.0f} msg/s below the "
        f"{MIN_MSGS_PER_SEC:,.0f} floor"
    )
