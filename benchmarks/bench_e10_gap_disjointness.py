"""E10 — Lemma 2.6 + Theorem 2.8: the deterministic bound via gap disjointness.

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_lowerbounds``, experiment ``E10``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e10_gap_disjointness(benchmark):
    bench_experiment(benchmark, "E10")
