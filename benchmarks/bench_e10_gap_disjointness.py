"""E10 — Lemma 2.6 + Theorem 2.8: the deterministic bound via gap disjointness.

Measured: for beta <= ell (the deterministic parameter regime), the spanner
sizes of the disjoint case (<= c*ell^2) versus the D edges forced by
far-from-disjoint inputs (>= beta^2/12 * ell^2), and the threshold pair
(t, alpha*t) of Lemma 2.7.
"""

from common import fmt, print_table, record

from repro.lowerbounds import (
    build_construction_g,
    claim_2_2_holds,
    deterministic_gap_threshold,
    disjoint_case_spanner,
    minimum_required_d_edges,
    random_disjoint_instance,
    random_far_from_disjoint_instance,
    theorem_2_8_parameters,
)


def run_experiment():
    rows = []
    for n_target, alpha in ((1000, 1.0), (1600, 1.0), (2500, 2.0)):
        ell, beta = theorem_2_8_parameters(n_target, alpha)
        n_bits = ell * ell
        disjoint = build_construction_g(ell, beta, random_disjoint_instance(n_bits, seed=3))
        far = build_construction_g(ell, beta, random_far_from_disjoint_instance(n_bits, seed=4))
        sparse = disjoint_case_spanner(disjoint)
        # Spot-check Claim 2.2 (full spanner verification at this scale is done in E8/tests).
        assert all(claim_2_2_holds(disjoint, i, i) for i in range(1, min(ell, 4) + 1))
        t, alpha_t = deterministic_gap_threshold(disjoint, alpha)
        forced = minimum_required_d_edges(far)
        lemma_bound = (beta**2) * (ell**2) // 12
        rows.append(
            [f"n'={n_target} alpha={alpha}", disjoint.n, ell, beta, len(sparse),
             t, fmt(alpha_t), forced, lemma_bound,
             "yes" if forced > alpha_t else "no"]
        )
    return rows


def test_e10_gap_disjointness(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E10  Lemma 2.6 / Theorem 2.8: gap-disjointness regime (beta <= ell)",
        ["params", "n", "ell", "beta", "sparse size", "t=c*ell^2", "alpha*t",
         "forced D edges", "beta^2*ell^2/12", "gap detectable"],
        rows,
    )
    record(benchmark, rows=len(rows))
    for row in rows:
        assert row[4] <= row[5]            # Lemma 2.6, disjoint side
        assert row[7] >= row[8]            # Lemma 2.6, far-from-disjoint side
        assert row[9] == "yes"             # Lemma 2.7's threshold separates the cases
