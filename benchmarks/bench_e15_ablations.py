"""E15 — Ablations of the paper's design choices (Sections 4.1-4.2).

Measured on a shared workload:

* exact densest stars (the paper's polynomial flow computation) vs the
  peeling 2-approximation;
* the Section 4.1 cross-iteration star re-selection rule vs always picking a
  fresh densest star (the paper argues the rule is needed for the
  O(log n log Delta) bound);
* the 1/8 vote-acceptance threshold vs a stricter 1/2 threshold.

Reported: spanner size and iteration count for each configuration.
"""

from fractions import Fraction

from common import print_table, record

from repro.core import TwoSpannerOptions, run_two_spanner
from repro.graphs import cluster_graph, connected_gnp_graph
from repro.spanner import is_k_spanner

CONFIGS = [
    ("paper defaults", TwoSpannerOptions()),
    ("peeling densest star", TwoSpannerOptions(densest_method="peeling")),
    ("no star re-selection rule", TwoSpannerOptions(follow_paper_rule=False)),
    ("vote threshold 1/2", TwoSpannerOptions(vote_fraction=Fraction(1, 2))),
    ("star threshold rho/8", TwoSpannerOptions(threshold_divisor=8)),
]

WORKLOADS = [
    ("gnp n=30 p=0.3", connected_gnp_graph(30, 0.3, seed=7)),
    ("cluster 3x7", cluster_graph(3, 7, seed=8)),
]


def run_experiment():
    rows = []
    for wname, graph in WORKLOADS:
        for cname, options in CONFIGS:
            result = run_two_spanner(graph, seed=11, options=options)
            assert is_k_spanner(graph, result.edges, 2)
            rows.append([wname, cname, result.size, result.iterations, result.fallback_count])
    return rows


def test_e15_ablations(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E15  Ablations of the Section 4 design choices",
        ["workload", "configuration", "spanner size", "iterations", "selection fallbacks"],
        rows,
    )
    record(benchmark, rows=len(rows))
    # All configurations stay valid; the defaults never use the fallback branch
    # (Claim 4.4), and no ablation changes the spanner size by more than 2x.
    defaults = {row[0]: row[2] for row in rows if row[1] == "paper defaults"}
    for row in rows:
        if row[1] == "paper defaults":
            assert row[4] == 0
        assert row[2] <= 2 * defaults[row[0]] + 8
