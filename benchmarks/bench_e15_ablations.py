"""E15 — Ablations of the paper's design choices (Sections 4.1-4.2).

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_baselines``, experiment ``E15``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e15_ablations(benchmark):
    bench_experiment(benchmark, "E15")
