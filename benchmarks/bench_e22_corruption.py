"""E22 — corruption tier: coded workloads under payload bit-flips.

Runs the E22 experiment through the orchestrator (plain vs repetition vs
checksum flood-max and plain vs coded spanner under ``corrupt:*``, with the
soundness-under-corruption invariants and the four-engine-parity verify
hook in ``repro.experiments.defs_corruption``), then pins the *cost* of the
transform seam: a transforming filter forces every engine onto the
per-edge materialization path (one payload list cannot be shared across
receivers when each delivery may be mutated), so a
:class:`CorruptAdversary` whose rate is negligible but non-zero — every
edge hashed, nothing ever flipped — against a :class:`DropAdversary` at
the same rate — every edge hashed, shared-plist path — isolates exactly
the materialization price.  (Zero rates would not: the corrupt filter
skips hashing entirely at rate 0, which more than pays for the per-edge
path.)  ``E22_MAX_OVERHEAD`` bounds the multiple; like E16/E18/E19 it is
an environment knob so CI can relax it on noisy shared runners without
touching the registry.
"""

import os
import time

from repro.core import run_flood_max
from repro.distributed import CorruptAdversary, DropAdversary
from repro.experiments import bench_experiment
from repro.experiments.families import build_graph

#: Admissible slowdown of the per-edge transform path over the shared-plist
#: adversary path, as a fraction (1.5 = "at most 2.5x as slow"; measured
#: ~0.75 on the reference machine).
MAX_TRANSFORM_OVERHEAD = float(os.environ.get("E22_MAX_OVERHEAD", "1.5"))

#: Per-edge Bernoulli rate low enough that no trial fires on this instance
#: (deterministic: keyed hashes of a fixed seed/graph) yet every trial is
#: still hashed, keeping both timed paths' per-edge work identical.
_EPSILON_RATE = 1e-9

#: E19's instance: large enough that per-message work dominates, small
#: enough for a tier-1-friendly wall time.
_GRAPH = ("sparse_connected_gnp", 20000, 0.0005, 18)
_ROUNDS = 5


def _best_of(graph, repeats: int, adversary) -> float:
    """Best wall time of ``repeats`` batch-engine flood-max runs on ``graph``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_flood_max(
            graph, rounds=_ROUNDS, seed=3, engine="batch", adversary=adversary
        )
        best = min(best, time.perf_counter() - start)
        assert result.rounds == _ROUNDS
    return best


def test_e22_corruption(benchmark):
    report = bench_experiment(benchmark, "E22")
    results = {
        scenario["spec"]["name"]: scenario["result"]
        for scenario in report["experiments"][0]["scenarios"]
    }
    # The differential heart of the tier: same corruption stream, different
    # engines, identical forged physics (verify already checked; keep the
    # headline assertions visible here too).
    for engine in ("batch", "columnar", "reference"):
        assert (
            results[f"floodmax repetition corrupt=0.10 {engine}"][
                "metrics.adversary_corrupted_messages"
            ]
            == results["floodmax repetition corrupt=0.10"][
                "metrics.adversary_corrupted_messages"
            ]
        )
    # Soundness headline: where the plain flood elects a forgery, both
    # coded variants still recover the true maximum.
    assert not results["floodmax plain corrupt=0.10"]["recovered"]
    assert results["floodmax repetition corrupt=0.10"]["recovered"]
    assert results["floodmax checksum corrupt=0.10"]["recovered"]

    # Transform-seam overhead guard: epsilon-rate corrupt (per-edge path)
    # vs epsilon-rate drop (shared-plist path) on one shared graph,
    # best-of-3 each to shed scheduler noise.  Both hash every edge and
    # neither ever fires, so the difference is purely the materialization
    # fallback.
    graph = build_graph(_GRAPH)
    shared = _best_of(graph, 3, DropAdversary(_EPSILON_RATE))
    per_edge = _best_of(graph, 3, CorruptAdversary(_EPSILON_RATE))
    overhead = per_edge / shared - 1.0
    benchmark.extra_info["transform_seam_overhead"] = overhead
    assert overhead < MAX_TRANSFORM_OVERHEAD, (
        f"transforming filter added {overhead:.1%} over the shared-plist "
        f"adversary path (allowed {MAX_TRANSFORM_OVERHEAD:.0%})"
    )
