"""E23 — program-lowering speedup guard: lowered vs stepped columnar rounds.

The registry's E23 sweep (``repro.experiments.defs_vectorized``) pins the
*physics* of whole-round lowering — lowered and stepped twins agree
bit-for-bit.  This wrapper guards the *speedup* that justifies the layer:
on the shared n=20000 E18/E20 anchor graph, the lowered columnar path
(``vectorize=True``, zero per-node Python calls per round) must beat the
stepped columnar path (``vectorize=False``, one ``step()`` call per alive
vertex per round) by ``E23_MIN_SPEEDUP``.

Methodology — the same steady-state delta-rounds subtraction as
``bench_e20_columnar``: each mode is timed at 45 and at 5 rounds after a
3-round warmup, and the per-round cost is ``(t45 - t5) / 40`` so the
setup cost (contexts, CSR views, label columns — identical across modes)
cancels.  Throughput is ``2m / per_round`` messages/sec.

Measured on a quiet machine: lowered ~2.4 ms/round vs stepped ~13.4 ms/round
(~5.7x; the ISSUE targets >= 3x).  CI relaxes the floor via
``E23_MIN_SPEEDUP`` to absorb shared-runner noise.  Each invocation also
appends a flattened record to ``BENCH_E23.json`` through
:func:`benchmarks.common.append_trajectory`, giving CI artifacts a
cross-commit wall-time series.
"""

import os
import time

from common import append_trajectory

from repro.core.flood_max import run_flood_max
from repro.experiments.families import build_graph

# Measured ~5.7x on a quiet machine; CI sets E23_MIN_SPEEDUP lower to absorb
# shared-runner noise without losing the regression guard.
MIN_LOWERED_SPEEDUP = float(os.environ.get("E23_MIN_SPEEDUP", "3.0"))

#: The E18/E20/E23 shared anchor instance and seed.
_GRAPH = ("sparse_connected_gnp", 20000, 0.0005, 18)
_SEED = 3
_WARMUP_ROUNDS = 3
_SHORT_ROUNDS = 5
_LONG_ROUNDS = 45


def _steady_state_per_round(graph, vectorize: bool) -> float:
    """Per-round seconds of the columnar engine, setup excluded."""
    run_flood_max(
        graph, rounds=_WARMUP_ROUNDS, seed=_SEED, engine="columnar", vectorize=vectorize
    )
    timings = {}
    for rounds in (_SHORT_ROUNDS, _LONG_ROUNDS):
        start = time.perf_counter()
        result = run_flood_max(
            graph, rounds=rounds, seed=_SEED, engine="columnar", vectorize=vectorize
        )
        timings[rounds] = time.perf_counter() - start
        # Only the long run covers the diameter; the short run exists purely
        # to subtract the setup cost.
        if rounds >= _LONG_ROUNDS:
            assert result.converged
            assert result.leader == graph.number_of_nodes() - 1
    return (timings[_LONG_ROUNDS] - timings[_SHORT_ROUNDS]) / (
        _LONG_ROUNDS - _SHORT_ROUNDS
    )


def test_e23_lowered_columnar(benchmark):
    graph = build_graph(_GRAPH)
    msgs_per_round = 2 * graph.number_of_edges()

    def measure():
        return {
            mode: _steady_state_per_round(graph, vectorize)
            for mode, vectorize in (("stepped", False), ("lowered", True))
        }

    per_round = benchmark.pedantic(measure, rounds=1, iterations=1)
    throughput = {
        mode: msgs_per_round / seconds for mode, seconds in per_round.items()
    }
    speedup = throughput["lowered"] / throughput["stepped"]
    benchmark.extra_info.update(
        {
            "msgs_per_round": msgs_per_round,
            "stepped_msgs_per_sec": throughput["stepped"],
            "lowered_msgs_per_sec": throughput["lowered"],
            "speedup": speedup,
        }
    )
    trajectory = append_trajectory(
        "BENCH_E23.json",
        graph=list(_GRAPH),
        msgs_per_round=msgs_per_round,
        stepped_per_round_s=per_round["stepped"],
        lowered_per_round_s=per_round["lowered"],
        stepped_msgs_per_sec=throughput["stepped"],
        lowered_msgs_per_sec=throughput["lowered"],
        speedup=speedup,
    )
    print(
        f"\nE23 steady state: stepped {throughput['stepped']:,.0f} msg/s, "
        f"lowered {throughput['lowered']:,.0f} msg/s ({speedup:.2f}x); "
        f"trajectory -> {trajectory.name}"
    )
    assert speedup >= MIN_LOWERED_SPEEDUP, (
        f"lowered columnar rounds only {speedup:.2f}x over stepped "
        f"(required {MIN_LOWERED_SPEEDUP}x)"
    )
