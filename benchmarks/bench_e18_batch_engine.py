"""E18 — batch-engine scale sweep: flood-max broadcast traffic at n >= 20000.

Like E16 this experiment measures the *substrate*: the flood-max workload
(pure broadcast, the traffic pattern the ``batch`` engine fast-paths) runs
at n=20000 under both the batch and the indexed engine, plus a batch-only
scale point at n=50000 (scenarios in ``repro.experiments.defs_substrate``,
experiment ``E18``).  The registry ``verify`` pins identical physics across
engines; this wrapper additionally asserts the batch-vs-indexed throughput
floor, which stays here so CI can relax it via ``E18_MIN_SPEEDUP`` without
touching the registry.
"""

import os

from repro.experiments import bench_experiment

# Measured ~3.5x on a quiet machine; CI sets E18_MIN_SPEEDUP lower to
# absorb shared-runner noise without losing the regression guard.
MIN_BATCH_SPEEDUP = float(os.environ.get("E18_MIN_SPEEDUP", "2.0"))


def test_e18_batch_engine(benchmark):
    report = bench_experiment(benchmark, "E18")
    results = {
        scenario["spec"]["name"]: scenario["result"]
        for scenario in report["experiments"][0]["scenarios"]
    }
    speedup = (
        results["n=20000 batch"]["timing.messages_per_sec"]
        / results["n=20000 indexed"]["timing.messages_per_sec"]
    )
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batch engine only {speedup:.2f}x over indexed "
        f"(required {MIN_BATCH_SPEEDUP}x)"
    )
    # The scale tier must actually reach the large-n regime.
    assert results["n=50000 batch"]["n"] >= 20000
