"""E6 — Theorem 5.1: CONGEST MDS with a *guaranteed* O(log Delta) ratio.

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_mds``, experiment ``E06``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e06_mds(benchmark):
    bench_experiment(benchmark, "E06")
