"""E6 — Theorem 5.1: CONGEST MDS with a *guaranteed* O(log Delta) ratio.

Measured: dominating-set sizes of the paper's algorithm vs the exact optimum
(small), the sequential greedy and the expectation-only randomised baseline
(larger graphs), plus round counts and CONGEST message sizes.
"""

import math

from common import fmt, print_table, record

from repro.baselines import (
    exact_dominating_set,
    expectation_randomized_mds,
    greedy_dominating_set,
)
from repro.core import run_mds
from repro.graphs import barabasi_albert_graph, connected_gnp_graph, grid_graph, is_dominating_set

SMALL = [
    ("gnp n=16 p=0.3", connected_gnp_graph(16, 0.3, seed=1)),
    ("gnp n=18 p=0.25", connected_gnp_graph(18, 0.25, seed=2)),
]
LARGE = [
    ("gnp n=80 p=0.06", connected_gnp_graph(80, 0.06, seed=3)),
    ("ba n=100", barabasi_albert_graph(100, 2, seed=4)),
    ("grid 10x10", grid_graph(10, 10)),
]


def run_experiment():
    rows = []
    for name, graph in SMALL:
        result = run_mds(graph, seed=5)
        assert is_dominating_set(graph, result.dominators)
        opt = len(exact_dominating_set(graph))
        metrics = result.metrics.as_dict()
        rows.append(
            [name, opt, result.size, len(greedy_dominating_set(graph)),
             len(expectation_randomized_mds(graph, seed=6)),
             result.iterations, metrics["max_message_bits"]]
        )
    for name, graph in LARGE:
        result = run_mds(graph, seed=5)
        assert is_dominating_set(graph, result.dominators)
        metrics = result.metrics.as_dict()
        rows.append(
            [name, "-", result.size, len(greedy_dominating_set(graph)),
             len(expectation_randomized_mds(graph, seed=6)),
             result.iterations, metrics["max_message_bits"]]
        )
    return rows


def test_e06_mds(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E6  Theorem 5.1: guaranteed O(log Delta) MDS in CONGEST",
        ["workload", "exact", "paper alg", "greedy", "expectation-only", "iterations", "max msg bits"],
        rows,
    )
    record(benchmark, rows=len(rows))
    # Guaranteed-ratio algorithm stays within O(log Delta) of greedy (itself ~ln Delta of OPT).
    for row in rows:
        assert row[2] <= 8 * row[3] + 8
    # CONGEST: every message stays within O(log n) bits (the simulator enforces it too).
    assert all(row[6] <= 32 * math.ceil(math.log2(110)) for row in rows)
