"""E11 — Figure 2 + Theorems 2.9 / 2.10: the weighted lower-bound constructions.

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_lowerbounds``, experiment ``E11``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e11_weighted_lower_bound(benchmark):
    bench_experiment(benchmark, "E11")
