"""E11 — Figure 2 + Theorems 2.9 / 2.10: the weighted lower-bound constructions.

Measured: for G_w(ell) (directed, k >= 4) and its undirected path-extended
variant (stretch k), whether a zero-cost spanner exists — it must exist
exactly for disjoint inputs — and the cut size (Theta(ell)), which is what
turns the Omega(N) communication bound into an Omega(n / log n) round bound.
"""

from common import print_table, record

from repro.lowerbounds import (
    build_construction_gw,
    build_construction_gw_undirected,
    has_zero_cost_spanner,
    has_zero_cost_spanner_undirected,
    random_disjoint_instance,
    random_intersecting_instance,
)


def run_experiment():
    rows = []
    for ell in (4, 8, 12):
        n_bits = ell * ell
        disjoint_inst = random_disjoint_instance(n_bits, seed=ell)
        intersect_inst = random_intersecting_instance(n_bits, 1, seed=ell + 1)
        gw_d = build_construction_gw(ell, disjoint_inst)
        gw_i = build_construction_gw(ell, intersect_inst)
        rows.append(
            [f"directed k=4, ell={ell}", gw_d.graph.number_of_nodes(), len(gw_d.cut_edges()),
             has_zero_cost_spanner(gw_d, 4), has_zero_cost_spanner(gw_i, 4)]
        )
        for k in (4, 6):
            und_d = build_construction_gw_undirected(ell, disjoint_inst, k=k)
            und_i = build_construction_gw_undirected(ell, intersect_inst, k=k)
            rows.append(
                [f"undirected k={k}, ell={ell}", und_d.graph.number_of_nodes(), 3 * ell,
                 has_zero_cost_spanner_undirected(und_d),
                 has_zero_cost_spanner_undirected(und_i)]
            )
    return rows


def test_e11_weighted_lower_bound(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E11  Figure 2 / Theorems 2.9-2.10: zero-cost spanner iff inputs disjoint",
        ["construction", "n", "cut edges", "zero-cost (disjoint)", "zero-cost (intersecting)"],
        rows,
    )
    record(benchmark, rows=len(rows))
    for row in rows:
        assert row[3] is True
        assert row[4] is False
