"""E8 — Figure 1 + Claim 2.2 + Lemma 2.3: the randomised lower-bound construction.

Measured: for G(ell, beta) built from disjoint vs intersecting inputs, the
size of the sparse spanner available in the disjoint case versus the number
of dense-component edges forced into *any* spanner in the intersecting case.
The gap (forced / sparse) is what makes an alpha-approximation reveal
disjointness.
"""

from common import fmt, print_table, record

from repro.lowerbounds import (
    build_construction_g,
    claim_2_2_holds,
    disjoint_case_spanner,
    minimum_required_d_edges,
    random_disjoint_instance,
    random_intersecting_instance,
)
from repro.spanner import is_k_spanner_directed

SETTINGS = [
    (3, 10),
    (3, 22),
    (4, 30),
]


def run_experiment():
    rows = []
    for ell, beta in SETTINGS:
        n_bits = ell * ell
        disjoint = build_construction_g(ell, beta, random_disjoint_instance(n_bits, seed=1))
        intersecting = build_construction_g(
            ell, beta, random_intersecting_instance(n_bits, intersections=1, seed=2)
        )
        claim = all(
            claim_2_2_holds(cg, i, r)
            for cg in (disjoint, intersecting)
            for i in range(1, ell + 1)
            for r in range(1, ell + 1)
        )
        sparse = disjoint_case_spanner(disjoint)
        sparse_valid = is_k_spanner_directed(disjoint.graph, sparse, 5)
        forced = minimum_required_d_edges(intersecting)
        rows.append(
            [f"ell={ell} beta={beta}", disjoint.n, len(disjoint.d_edges), claim,
             sparse_valid, len(sparse), disjoint.sparse_spanner_bound(), forced,
             fmt(forced / max(1, len(sparse)))]
        )
    return rows


def test_e08_construction_g(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E8  Figure 1 / Lemma 2.3: spanner-size gap of G(ell, beta)",
        ["params", "n", "|D|", "Claim2.2", "sparse valid", "sparse size",
         "c*ell*beta", "forced D edges", "gap"],
        rows,
    )
    record(benchmark, rows=len(rows))
    for row in rows:
        assert row[3] and row[4]
        assert row[5] <= row[6]          # Lemma 2.3 upper bound on the disjoint case
    # With beta > c*ell the single-intersection case already exceeds the sparse bound.
    assert rows[1][7] > rows[1][6]
