"""E8 — Figure 1 + Claim 2.2 + Lemma 2.3: the randomised lower-bound construction.

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_lowerbounds``, experiment ``E08``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e08_construction_g(benchmark):
    bench_experiment(benchmark, "E08")
