"""E14 — Section 4 context: head-to-head comparison on a shared graph suite.

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_baselines``, experiment ``E14``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e14_baseline_comparison(benchmark):
    bench_experiment(benchmark, "E14")
