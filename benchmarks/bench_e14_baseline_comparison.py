"""E14 — Section 4 context: head-to-head comparison on a shared graph suite.

Measured: 2-spanner sizes of (a) the paper's distributed algorithm, (b) the
Kortsarz-Peleg sequential greedy it matches, (c) the trivial take-all
n-approximation, and (d) the n-1 connectivity floor.  The expected shape:
distributed ~ greedy << take-all on dense graphs, all equal on trees /
bipartite graphs where no 2-spanner can drop edges.
"""

from common import fmt, print_table, record

from repro.baselines import greedy_two_spanner, take_all_spanner
from repro.core import TwoSpannerOptions, run_two_spanner
from repro.graphs import (
    cluster_graph,
    complete_bipartite_graph,
    complete_graph,
    connected_gnp_graph,
    path_graph,
)
from repro.spanner import is_k_spanner

WORKLOADS = [
    ("path n=30", path_graph(30)),
    ("bipartite K5,6", complete_bipartite_graph(5, 6)),
    ("clique n=20", complete_graph(20)),
    ("gnp n=40 p=0.3", connected_gnp_graph(40, 0.3, seed=1)),
    ("gnp n=60 p=0.2", connected_gnp_graph(60, 0.2, seed=2)),
    ("cluster 4x8", cluster_graph(4, 8, seed=3)),
]


def run_experiment():
    rows = []
    for name, graph in WORKLOADS:
        distributed = run_two_spanner(
            graph, seed=5, options=TwoSpannerOptions(densest_method="peeling")
        )
        assert is_k_spanner(graph, distributed.edges, 2)
        greedy = greedy_two_spanner(graph, method="peeling")
        rows.append(
            [name, graph.number_of_edges(), distributed.size, len(greedy),
             len(take_all_spanner(graph)), graph.number_of_nodes() - 1,
             fmt(distributed.size / max(1, len(greedy)))]
        )
    return rows


def test_e14_baseline_comparison(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E14  Distributed (Thm 1.3) vs Kortsarz-Peleg greedy vs take-all",
        ["workload", "m", "distributed", "KP greedy", "take-all", "n-1 floor", "dist/greedy"],
        rows,
    )
    record(benchmark, rows=len(rows))
    for row in rows:
        assert row[2] <= row[4]                  # never worse than take-all
        assert row[2] >= row[5]                  # never below the connectivity floor
        assert float(row[6]) <= 4.0              # tracks the greedy baseline
    # On the clique the savings are dramatic for both (take-all is ~n/2 times larger).
    clique = rows[2]
    assert clique[4] >= 4 * clique[2]
