"""E3 — Theorem 4.9: the directed 2-spanner variant keeps the O(log m/n) ratio.

Measured: directed spanner size vs the exact directed optimum (small
digraphs) and vs the directed LP bound (medium digraphs).
"""

from common import fmt, print_table, record

from repro.core import run_directed_two_spanner
from repro.graphs import bidirect, complete_graph, random_digraph, random_tournament
from repro.spanner import (
    is_k_spanner_directed,
    lp_lower_bound_2spanner_directed,
    minimum_k_spanner_exact_directed,
)

SMALL = [
    ("digraph n=10 p=0.35", random_digraph(10, 0.35, seed=1)),
    ("digraph n=11 p=0.30", random_digraph(11, 0.30, seed=2)),
    ("tournament n=8", random_tournament(8, seed=3)),
    ("bidirected K6", bidirect(complete_graph(6))),
]
MEDIUM = [
    ("digraph n=30 p=0.15", random_digraph(30, 0.15, seed=4)),
    ("tournament n=20", random_tournament(20, seed=5)),
]


def run_experiment():
    rows = []
    for name, graph in SMALL:
        result = run_directed_two_spanner(graph, seed=7)
        assert is_k_spanner_directed(graph, result.arcs, 2)
        opt = len(minimum_k_spanner_exact_directed(graph, 2))
        rows.append([name, graph.number_of_edges(), opt, result.size, fmt(result.size / opt), "exact"])
    for name, graph in MEDIUM:
        result = run_directed_two_spanner(graph, seed=7)
        assert is_k_spanner_directed(graph, result.arcs, 2)
        lp = max(1.0, lp_lower_bound_2spanner_directed(graph))
        rows.append([name, graph.number_of_edges(), fmt(lp), result.size, fmt(result.size / lp), "LP bound"])
    return rows


def test_e03_directed_two_spanner(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E3  Theorem 4.9: directed 2-spanner approximation",
        ["workload", "m", "opt/LP", "alg size", "ratio", "baseline"],
        rows,
    )
    worst = max(float(r[4]) for r in rows)
    record(benchmark, worst_ratio=worst)
    assert worst <= 24.0
