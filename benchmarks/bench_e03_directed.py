"""E3 — Theorem 4.9: the directed 2-spanner variant keeps the O(log m/n) ratio.

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_spanner``, experiment ``E03``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e03_directed_two_spanner(benchmark):
    bench_experiment(benchmark, "E03")
