"""E2 — Theorem 1.3: the algorithm finishes in O(log n log Delta) rounds w.h.p.

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_spanner``, experiment ``E02``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e02_two_spanner_rounds(benchmark):
    bench_experiment(benchmark, "E02")
