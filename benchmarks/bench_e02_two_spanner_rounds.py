"""E2 — Theorem 1.3: the algorithm finishes in O(log n log Delta) rounds w.h.p.

Measured: iterations and simulator rounds of the distributed 2-spanner as the
graph grows, against the log2(n) * log2(Delta) yardstick.
"""

import math

from common import fmt, print_table, record

from repro.core import TwoSpannerOptions, run_two_spanner
from repro.graphs import barabasi_albert_graph, connected_gnp_graph
from repro.spanner import is_k_spanner

WORKLOADS = [
    ("gnp n=20", connected_gnp_graph(20, 0.30, seed=1)),
    ("gnp n=40", connected_gnp_graph(40, 0.20, seed=2)),
    ("gnp n=80", connected_gnp_graph(80, 0.12, seed=3)),
    ("gnp n=120", connected_gnp_graph(120, 0.08, seed=4)),
    ("ba n=100 m0=3", barabasi_albert_graph(100, 3, seed=5)),
]


def run_experiment():
    rows = []
    for name, graph in WORKLOADS:
        options = TwoSpannerOptions(densest_method="peeling")
        result = run_two_spanner(graph, seed=9, options=options)
        assert is_k_spanner(graph, result.edges, 2)
        n, delta = graph.number_of_nodes(), graph.max_degree()
        yardstick = math.log2(n) * math.log2(max(2, delta))
        rows.append(
            [name, n, delta, result.iterations, result.rounds,
             fmt(yardstick), fmt(result.iterations / yardstick)]
        )
    return rows


def test_e02_two_spanner_rounds(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E2  Theorem 1.3: rounds vs O(log n log Delta)",
        ["workload", "n", "Delta", "iterations", "sim rounds", "log2(n)*log2(D)", "iters/yardstick"],
        rows,
    )
    ratios = [float(r[6]) for r in rows]
    record(benchmark, max_iter_over_yardstick=max(ratios))
    # Shape check: the iteration count never explodes past the polylog envelope,
    # and it does not grow linearly with n (n grows 6x across the sweep).
    assert max(ratios) <= 10.0
    assert rows[-2][3] <= 4 * rows[0][3] + 8
