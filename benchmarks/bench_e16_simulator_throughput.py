"""E16 — simulator throughput: rounds/sec of the indexed execution core.

Unlike E1-E15 this experiment measures the *substrate*: the two-spanner
algorithm runs on a fixed G(600, 0.05) instance under both simulator engines
(scenarios in ``repro.experiments.defs_substrate``, experiment ``E16``).
The registry ``verify`` pins identical physics across engines; this wrapper
additionally asserts the engine-level speedup floor, which stays here so CI
can relax it via ``E16_MIN_SPEEDUP`` without touching the registry.
"""

import os

from repro.experiments import bench_experiment

# Measured ~2.3-2.4x on a quiet machine; CI sets E16_MIN_SPEEDUP lower to
# absorb shared-runner noise without losing the regression guard.
MIN_ENGINE_SPEEDUP = float(os.environ.get("E16_MIN_SPEEDUP", "2.0"))


def test_e16_simulator_throughput(benchmark):
    report = bench_experiment(benchmark, "E16")
    results = {
        scenario["spec"]["name"]: scenario["result"]
        for scenario in report["experiments"][0]["scenarios"]
    }
    speedup = (
        results["indexed"]["timing.rounds_per_sec"]
        / results["reference"]["timing.rounds_per_sec"]
    )
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= MIN_ENGINE_SPEEDUP, (
        f"indexed engine only {speedup:.2f}x over reference "
        f"(required {MIN_ENGINE_SPEEDUP}x)"
    )
