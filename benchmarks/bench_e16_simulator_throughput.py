"""E16 — simulator throughput: rounds/sec of the indexed execution core.

Unlike E1-E15 this experiment measures the *substrate*, not a theorem: the
two-spanner algorithm is run on a fixed G(600, 0.05) instance under both
simulator engines and the achieved rounds/sec are reported.  The ``reference``
engine is the seed dict-based simulator, so the speedup column is the
engine-level improvement a future PR must not regress; the absolute
``indexed`` rounds/sec gives the perf trajectory across PRs.
"""

import os
import time

from common import fmt, print_table, record

from repro.core import run_two_spanner
from repro.graphs import gnp_random_graph

N = 600
P = 0.05
GRAPH_SEED = 7
RUN_SEED = 1
# Measured ~2.3-2.4x on a quiet machine; CI sets E16_MIN_SPEEDUP lower to
# absorb shared-runner noise without losing the regression guard.
MIN_ENGINE_SPEEDUP = float(os.environ.get("E16_MIN_SPEEDUP", "2.0"))


def _timed_run(graph, engine):
    start = time.perf_counter()
    result = run_two_spanner(graph, seed=RUN_SEED, engine=engine)
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_experiment():
    graph = gnp_random_graph(N, P, seed=GRAPH_SEED)
    results = {}
    for engine in ("reference", "indexed"):
        result, elapsed = _timed_run(graph, engine)
        results[engine] = {
            "rounds": result.rounds,
            "edges": len(result.edges),
            "elapsed": elapsed,
            "rps": result.rounds / elapsed,
            "metrics": result.metrics.as_dict(),
        }
    return results


def test_e16_simulator_throughput(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    ref, new = results["reference"], results["indexed"]
    speedup = new["rps"] / ref["rps"]
    print_table(
        f"E16  simulator throughput on G({N}, {P}) two-spanner (seed {RUN_SEED})",
        ["engine", "rounds", "spanner edges", "seconds", "rounds/sec"],
        [
            ["reference", ref["rounds"], ref["edges"], fmt(ref["elapsed"]), fmt(ref["rps"])],
            ["indexed", new["rounds"], new["edges"], fmt(new["elapsed"]), fmt(new["rps"])],
            ["speedup", "-", "-", "-", f"{fmt(speedup, 2)}x"],
        ],
    )
    record(
        benchmark,
        n=N,
        p=P,
        reference_rps=ref["rps"],
        indexed_rps=new["rps"],
        speedup=speedup,
    )
    # Identical physics on both engines...
    assert new["rounds"] == ref["rounds"]
    assert new["edges"] == ref["edges"]
    assert new["metrics"] == ref["metrics"]
    # ...and the compiled core must stay at least 2x faster than the seed engine.
    assert speedup >= MIN_ENGINE_SPEEDUP, (
        f"indexed engine only {speedup:.2f}x over reference "
        f"(required {MIN_ENGINE_SPEEDUP}x)"
    )
