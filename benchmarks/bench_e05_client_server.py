"""E5 — Theorem 4.15: client-server 2-spanner, ratio O(min(log |C|/|V(C)|, log Delta_S)).

Measured: chosen server edges vs the exact optimum for random client/server
splits of varying server density, plus the theorem's two yardsticks.
"""

import math

from common import fmt, print_table, record

from repro.core import client_server_two_spanner
from repro.graphs import connected_gnp_graph, random_split_instance
from repro.spanner import is_client_server_2_spanner, minimum_client_server_2_spanner_exact

SPLITS = [
    ("clients 0.5 / servers 0.9", 0.5, 0.9),
    ("clients 0.7 / servers 0.7", 0.7, 0.7),
    ("clients 0.9 / servers 0.5", 0.9, 0.5),
    ("all clients / all servers", 1.0, 1.0),
]


def run_experiment():
    rows = []
    for name, c_frac, s_frac in SPLITS:
        graph = connected_gnp_graph(12, 0.5, seed=6)
        inst = random_split_instance(graph, client_fraction=c_frac, server_fraction=s_frac, seed=7)
        result = client_server_two_spanner(inst, seed=8)
        assert is_client_server_2_spanner(inst, result.edges)
        opt = minimum_client_server_2_spanner_exact(inst)
        opt_size = max(1, len(opt))
        ratio = result.size / opt_size
        log_c_vc = math.log2(max(2.0, len(inst.clients) / max(1, len(inst.client_vertices()))))
        log_ds = math.log2(max(2, inst.server_max_degree()))
        rows.append(
            [name, len(inst.clients), len(inst.servers), opt_size, result.size,
             fmt(ratio), fmt(min(log_c_vc, log_ds))]
        )
    return rows


def test_e05_client_server(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E5  Theorem 4.15: client-server 2-spanner",
        ["split", "|C|", "|S|", "opt", "alg", "ratio", "min(log C/VC, log Ds)"],
        rows,
    )
    worst = max(float(r[5]) for r in rows)
    record(benchmark, worst_ratio=worst)
    assert worst <= 16 * max(1.0, max(float(r[6]) for r in rows))
