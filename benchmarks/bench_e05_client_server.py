"""E5 — Theorem 4.15: client-server 2-spanner, ratio O(min(log |C|/|V(C)|, log Delta_S)).

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_spanner``, experiment ``E05``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e05_client_server(benchmark):
    bench_experiment(benchmark, "E05")
