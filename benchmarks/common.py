"""Shared helpers for the experiment benchmarks (E1-E15).

Every benchmark prints the rows it reproduces (run pytest with ``-s`` to see
them) and stores the same numbers in ``benchmark.extra_info`` so they survive
in the pytest-benchmark JSON output.  The paper has no measurement tables —
it is a theory paper — so each experiment measures the quantity bounded by
one theorem/claim/figure and reports it next to the theorem's yardstick.
"""

from __future__ import annotations

from typing import Any


def print_table(title: str, header: list[str], rows: list[list[Any]]) -> None:
    """Print a small fixed-width table (the benchmark's reproduced 'figure')."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def record(benchmark, **info: Any) -> None:
    """Attach experiment outputs to the pytest-benchmark record.

    Values carrying an ``as_dict()`` method (``RunResult``, ``Metrics``) are
    flattened through it so benchmarks can pass result objects directly
    instead of poking individual attributes.
    """
    for key, value in info.items():
        as_dict = getattr(value, "as_dict", None)
        benchmark.extra_info[key] = as_dict() if callable(as_dict) else value
