"""Shared helpers for the experiment benchmarks.

Since the experiment orchestration subsystem (``repro.experiments``) the
benchmarks are thin pytest-benchmark wrappers over the scenario registry —
see :func:`repro.experiments.bench_experiment`.  This module remains as a
small compatibility layer: ``print_table`` / ``fmt`` re-export the package
implementations, and :func:`record` attaches values to
``benchmark.extra_info`` with real flattening (it used to store ``as_dict()``
results as *nested* dicts despite claiming to flatten, so per-model counters
vanished from flat JSON consumers; nested keys now use ``key.subkey``
naming, the same convention the runner's JSON schema uses).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.experiments.reporting import flatten_info, fmt, print_table  # noqa: F401


def record(benchmark, **info: Any) -> None:
    """Attach experiment outputs to the pytest-benchmark record.

    Values carrying an ``as_dict()`` method (``RunResult``, ``Metrics``) are
    converted through it, and any nested mapping is flattened into dotted
    ``key.subkey`` entries so the resulting ``extra_info`` is flat.
    """
    for key, value in info.items():
        benchmark.extra_info.update(flatten_info(value, prefix=key))


def append_trajectory(filename: str, **info: Any) -> Path:
    """Append one flattened record to a JSON trajectory file and return its path.

    Trajectory files (``BENCH_E23.json`` etc.) accumulate one record per
    benchmark invocation as a JSON array, so successive CI runs — uploaded
    as artifacts — form a wall-time series a human or a plot script can diff
    across commits without parsing pytest-benchmark's full machine output.
    The destination directory defaults to the repository root and can be
    redirected with ``BENCH_TRAJECTORY_DIR``; a corrupt or foreign file is
    never destroyed — the record set restarts alongside the parse error.
    """
    root = Path(os.environ.get("BENCH_TRAJECTORY_DIR", Path(__file__).resolve().parent.parent))
    path = root / filename
    records: list[dict[str, Any]] = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                records = loaded
        except (OSError, ValueError):
            records = []
    records.append(flatten_info(dict(info)))
    path.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")
    return path
