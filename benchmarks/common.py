"""Shared helpers for the experiment benchmarks.

Since the experiment orchestration subsystem (``repro.experiments``) the
benchmarks are thin pytest-benchmark wrappers over the scenario registry —
see :func:`repro.experiments.bench_experiment`.  This module remains as a
small compatibility layer: ``print_table`` / ``fmt`` re-export the package
implementations, and :func:`record` attaches values to
``benchmark.extra_info`` with real flattening (it used to store ``as_dict()``
results as *nested* dicts despite claiming to flatten, so per-model counters
vanished from flat JSON consumers; nested keys now use ``key.subkey``
naming, the same convention the runner's JSON schema uses).
"""

from __future__ import annotations

from typing import Any

from repro.experiments.reporting import flatten_info, fmt, print_table  # noqa: F401


def record(benchmark, **info: Any) -> None:
    """Attach experiment outputs to the pytest-benchmark record.

    Values carrying an ``as_dict()`` method (``RunResult``, ``Metrics``) are
    converted through it, and any nested mapping is flattened into dotted
    ``key.subkey`` entries so the resulting ``extra_info`` is flat.
    """
    for key, value in info.items():
        benchmark.extra_info.update(flatten_info(value, prefix=key))
