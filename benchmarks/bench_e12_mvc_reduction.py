"""E12 — Figure 3 + Claim 3.1 + Lemma 3.2: weighted 2-spanner vs minimum vertex cover.

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_lowerbounds``, experiment ``E12``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e12_mvc_reduction(benchmark):
    bench_experiment(benchmark, "E12")
