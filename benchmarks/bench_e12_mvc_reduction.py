"""E12 — Figure 3 + Claim 3.1 + Lemma 3.2: weighted 2-spanner vs minimum vertex cover.

Measured: on small graphs, the exact minimum weighted 2-spanner cost of the
reduction graph G_S equals the exact MVC size of G (Claim 3.1); on larger
graphs, running the paper's *weighted 2-spanner algorithm* on G_S and
converting the output yields a vertex cover whose size is bounded by the
spanner cost (the Lemma 3.2 transfer, which is how MVC lower bounds carry
over to weighted 2-spanners).
"""

from common import fmt, print_table, record

from repro.core import WeightedVariant, run_two_spanner
from repro.graphs import connected_gnp_graph, cycle_graph, path_graph
from repro.lowerbounds import (
    build_mvc_reduction,
    exact_vertex_cover,
    greedy_matching_vertex_cover,
    is_vertex_cover,
    spanner_to_vertex_cover,
)
from repro.lowerbounds.mvc_reduction import spanner_cost as reduction_cost
from repro.spanner import is_k_spanner, minimum_k_spanner_exact

SMALL = [
    ("path n=6", path_graph(6)),
    ("cycle n=7", cycle_graph(7)),
    ("gnp n=8 p=0.35", connected_gnp_graph(8, 0.35, seed=1)),
]
LARGE = [
    ("gnp n=14 p=0.3", connected_gnp_graph(14, 0.3, seed=2)),
    ("gnp n=18 p=0.2", connected_gnp_graph(18, 0.2, seed=3)),
]


def run_experiment():
    rows = []
    for name, graph in SMALL:
        reduction = build_mvc_reduction(graph)
        mvc = len(exact_vertex_cover(graph))
        opt_spanner = minimum_k_spanner_exact(reduction.reduced, 2, use_weights=True)
        cost = sum(reduction.reduced.weight(*e) for e in opt_spanner)
        rows.append([name, "exact", mvc, fmt(cost), "-", "equal" if cost == mvc else "DIFFERENT"])
    for name, graph in LARGE:
        reduction = build_mvc_reduction(graph)
        result = run_two_spanner(reduction.reduced, variant=WeightedVariant(), seed=4)
        assert is_k_spanner(reduction.reduced, result.edges, 2)
        cover = spanner_to_vertex_cover(reduction, result.edges)
        assert is_vertex_cover(graph, cover)
        greedy = len(greedy_matching_vertex_cover(graph))
        rows.append(
            [name, "distributed weighted 2-spanner", len(cover),
             fmt(result.cost(reduction.reduced)), greedy,
             "cover<=cost" if len(cover) <= result.cost(reduction.reduced) + 1e-9 else "VIOLATION"]
        )
    return rows


def test_e12_mvc_reduction(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E12  Figure 3 / Claim 3.1: weighted 2-spanner of G_S vs vertex cover of G",
        ["workload", "solver", "cover size", "spanner cost", "greedy 2-approx VC", "check"],
        rows,
    )
    record(benchmark, rows=len(rows))
    assert all(row[5] in ("equal", "cover<=cost") for row in rows)
