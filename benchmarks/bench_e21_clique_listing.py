"""E21 — targeted-send fast path throughput guard: fan-out at n=4000.

The registry's E21 tier (``repro.experiments.defs_clique_listing``) carries
the verified triangle-listing and checksum-fanout scenarios; this wrapper
guards the *engine speedup* on pure targeted traffic — the PR 7 tentpole —
with the denser sibling of the registry's fan-out anchor (same n and seed,
double the density and fan-out): every node sends one small int to each of
its first 16 ascending neighbours, every round.

Methodology — steady-state delta-rounds, exactly as ``bench_e20_columnar``:
each engine is timed at 45 and at 5 rounds (after a 3-round warmup) and the
per-round cost is ``(t45 - t5) / 40``, so the engine-identical setup cost
(n ``Random`` instances, contexts, neighbour rows) cancels.  Each engine
takes the best of two such measurements — ``min`` is the right estimator
for timing noise, which is strictly additive.  The receiver folds through
:meth:`TargetedInbox.max_heard` when the engine offers it — fold pushdown
keeps the comparison about *delivery*, not about per-message Python that
is conserved across engines by construction.

The model is the enforcing CONGEST model: per-link bandwidth accounting is
part of the targeted contract (the oracle pays it per message, the fast
path pays it in vectorized prefix sums), so the guarded ratio covers the
accounting kernels too, not just the scatter.

Measured on a quiet machine: batch ~3.9x over indexed, columnar ~3.5x,
~1.5M msg/s steady state.  CI relaxes the ratio floor via
``E21_MIN_SPEEDUP`` to absorb shared-runner noise; ``E21_MIN_MSGS_PER_SEC``
defaults to 0 (recorded, not asserted) because absolute throughput varies
with host hardware in a way a ratio does not.
"""

import os
import time
from itertools import chain

from repro.distributed import NodeProgram, Simulator
from repro.distributed.models import congest_model
from repro.experiments.families import build_graph

# Measured ~3.1x on a quiet machine; CI sets E21_MIN_SPEEDUP lower to
# absorb shared-runner noise without losing the regression guard.
MIN_BATCH_SPEEDUP = float(os.environ.get("E21_MIN_SPEEDUP", "3.0"))
MIN_MSGS_PER_SEC = float(os.environ.get("E21_MIN_MSGS_PER_SEC", "0"))

#: Denser sibling of the E21 fan-out anchor (defs_clique_listing uses
#: the same n and seed at half the density and fan-out).
_GRAPH = ("sparse_connected_gnp", 4000, 0.004, 9)
_SEED = 13
_FANOUT = 16
_WARMUP_ROUNDS = 3
_SHORT_ROUNDS = 5
_LONG_ROUNDS = 45
_REPS = 2


class _PushdownFanout(NodeProgram):
    """Targeted fan-out with a fold-pushdown receiver.

    Sends one round-varying int to each of the first ``_FANOUT`` ascending
    neighbours; folds the inbox through ``max_heard`` when the engine's
    inbox view offers it, and through a C-level ``max`` over the dict
    oracle's values otherwise — the same bit-for-bit outcome either way.
    """

    def __init__(self, node, rounds):
        self.rounds = rounds
        self.best = 0
        self.targets = None

    def on_start(self, ctx):
        self.targets = sorted(ctx.neighbors)[:_FANOUT]
        self._emit(ctx, 0)

    def _emit(self, ctx, round_no):
        payload = self.best + round_no
        for dst in self.targets:
            ctx.send(dst, payload)

    def on_round(self, ctx, inbox):
        if inbox:
            if inbox.__class__ is dict:
                heard = max(chain.from_iterable(inbox.values()))
                if heard > self.best:
                    self.best = heard
            else:
                self.best = inbox.max_heard(self.best)
        if ctx.round >= self.rounds:
            ctx.set_output(self.best)
            ctx.halt()
            return
        self._emit(ctx, ctx.round)


def _run(graph, engine, rounds):
    n = graph.number_of_nodes()
    sim = Simulator(
        graph,
        lambda v: _PushdownFanout(v, rounds),
        model=congest_model(n, enforce=True),
        seed=_SEED,
        engine=engine,
    )
    return sim.run(max_rounds=rounds + 2)


def _steady_state_per_round(graph, engine: str):
    """(per-round seconds, long-run outputs) of ``engine``, setup excluded."""
    _run(graph, engine, _WARMUP_ROUNDS)
    best = None
    outputs = None
    for _ in range(_REPS):
        timings = {}
        for rounds in (_SHORT_ROUNDS, _LONG_ROUNDS):
            start = time.perf_counter()
            result = _run(graph, engine, rounds)
            timings[rounds] = time.perf_counter() - start
            if rounds >= _LONG_ROUNDS:
                outputs = dict(result.outputs)
        per_round = (timings[_LONG_ROUNDS] - timings[_SHORT_ROUNDS]) / (
            _LONG_ROUNDS - _SHORT_ROUNDS
        )
        if best is None or per_round < best:
            best = per_round
    return best, outputs


def test_e21_targeted_fast_path(benchmark):
    graph = build_graph(_GRAPH)
    msgs_per_round = sum(
        min(_FANOUT, len(graph.neighbors(v))) for v in graph.nodes()
    )

    def measure():
        per_round = {}
        outputs = {}
        for engine in ("indexed", "batch", "columnar"):
            per_round[engine], outputs[engine] = _steady_state_per_round(
                graph, engine
            )
        # The ratio only means something if the engines computed the same
        # thing: the differential contract, asserted on the long run.
        assert outputs["batch"] == outputs["indexed"]
        assert outputs["columnar"] == outputs["indexed"]
        return per_round

    per_round = benchmark.pedantic(measure, rounds=1, iterations=1)
    throughput = {
        engine: msgs_per_round / seconds for engine, seconds in per_round.items()
    }
    batch_speedup = per_round["indexed"] / per_round["batch"]
    columnar_speedup = per_round["indexed"] / per_round["columnar"]
    benchmark.extra_info.update(
        {
            "msgs_per_round": msgs_per_round,
            "indexed_msgs_per_sec": throughput["indexed"],
            "batch_msgs_per_sec": throughput["batch"],
            "columnar_msgs_per_sec": throughput["columnar"],
            "batch_speedup": batch_speedup,
            "columnar_speedup": columnar_speedup,
        }
    )
    print(
        f"\nE21 steady state: indexed {throughput['indexed']:,.0f} msg/s, "
        f"batch {throughput['batch']:,.0f} msg/s ({batch_speedup:.2f}x), "
        f"columnar {throughput['columnar']:,.0f} msg/s "
        f"({columnar_speedup:.2f}x)"
    )
    assert batch_speedup >= MIN_BATCH_SPEEDUP, (
        f"batch engine only {batch_speedup:.2f}x over indexed on targeted "
        f"traffic (required {MIN_BATCH_SPEEDUP}x)"
    )
    assert throughput["batch"] >= MIN_MSGS_PER_SEC, (
        f"batch throughput {throughput['batch']:,.0f} msg/s below the "
        f"{MIN_MSGS_PER_SEC:,.0f} floor"
    )
