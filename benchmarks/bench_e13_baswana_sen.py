"""E13 — Section 1 discussion: undirected CONGEST O(n^{1/k})-approximation via
(2k-1)-spanners (Baswana-Sen).

Measured: spanner sizes of the Baswana-Sen construction against the
O(k * n^{1+1/k}) expected-size bound, and the implied approximation ratio
size/(n-1) against the O(n^{1/k}) yardstick — the undirected counterpart the
paper's directed lower bound separates from.
"""

from common import fmt, print_table, record

from repro.baselines import baswana_sen_spanner, expected_size_bound, implied_approximation_ratio
from repro.graphs import connected_gnp_graph
from repro.spanner import is_k_spanner


def run_experiment():
    rows = []
    graph = connected_gnp_graph(120, 0.25, seed=3)
    n = graph.number_of_nodes()
    for k in (1, 2, 3, 4):
        spanner = baswana_sen_spanner(graph, k=k, seed=k)
        assert is_k_spanner(graph, spanner, 2 * k - 1)
        ratio = implied_approximation_ratio(graph, len(spanner))
        rows.append(
            [f"k={k} (stretch {2*k-1})", graph.number_of_edges(), len(spanner),
             fmt(expected_size_bound(n, k), 1), fmt(ratio), fmt(n ** (1.0 / k), 2)]
        )
    return rows


def test_e13_baswana_sen(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E13  Baswana-Sen (2k-1)-spanners and the implied O(n^{1/k}) approximation",
        ["setting", "m", "spanner size", "k*n^{1+1/k} bound", "size/(n-1)", "n^{1/k}"],
        rows,
    )
    record(benchmark, rows=len(rows))
    sizes = [row[2] for row in rows]
    assert sizes[0] >= sizes[1] >= sizes[2]          # sparser as k grows
    for row in rows:
        assert row[2] <= 4 * float(row[3])           # within the expected-size envelope
        assert float(row[4]) <= 4 * float(row[5])    # implied ratio tracks n^{1/k}
