"""E13 — Section 1: undirected CONGEST approximation via Baswana-Sen (2k-1)-spanners.

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_baselines``, experiment ``E13``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e13_baswana_sen(benchmark):
    bench_experiment(benchmark, "E13")
