"""E19 — robustness tier: fault-injected flood-max and clique 2-spanner.

Runs the E19 experiment through the orchestrator (drop/crash sweeps with
per-scenario invariants and the engine-parity-under-faults verify hook in
``repro.experiments.defs_robustness``), then asserts the *cost* contract of
the adversary layer: installing the identity :class:`NoAdversary` must add
less than ``E19_MAX_OVERHEAD`` (default 10%) to the E18-style batch-engine
fast path versus passing no adversary at all.  ``NoAdversary`` binds to no
delivery filter, so the engines literally execute their unmodified hot
loops — the guard pins that this stays true as the seam evolves.  Like
E16/E18, the threshold is an environment knob so CI can relax it on noisy
shared runners without touching the registry.
"""

import os
import time

from repro.core import run_flood_max
from repro.distributed import NoAdversary
from repro.experiments import bench_experiment
from repro.experiments.families import build_graph

#: The adversary seam's admissible no-fault slowdown on the batch fast path.
MAX_NO_ADVERSARY_OVERHEAD = float(os.environ.get("E19_MAX_OVERHEAD", "0.10"))

#: E18's n=20000 instance, trimmed to 5 rounds: large enough that per-message
#: work dominates, small enough for a tier-1-friendly wall time.
_GRAPH = ("sparse_connected_gnp", 20000, 0.0005, 18)
_ROUNDS = 5


def _best_of(graph, repeats: int, adversary) -> float:
    """Best wall time of ``repeats`` batch-engine flood-max runs on ``graph``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_flood_max(
            graph, rounds=_ROUNDS, seed=3, engine="batch", adversary=adversary
        )
        best = min(best, time.perf_counter() - start)
        assert result.rounds == _ROUNDS
    return best


def test_e19_robustness(benchmark):
    report = bench_experiment(benchmark, "E19")
    results = {
        scenario["spec"]["name"]: scenario["result"]
        for scenario in report["experiments"][0]["scenarios"]
    }
    # The differential heart of the tier: same adversary, different engines,
    # identical physics and fault counters (verify already checked; keep the
    # headline assertion visible here too).
    assert (
        results["floodmax drop=0.05"]["metrics.adversary_dropped_messages"]
        == results["floodmax drop=0.05 batch"]["metrics.adversary_dropped_messages"]
    )

    # NoAdversary overhead guard: one shared graph, best-of-3 each to shed
    # scheduler noise.
    graph = build_graph(_GRAPH)
    baseline = _best_of(graph, 3, None)
    identity = _best_of(graph, 3, NoAdversary())
    overhead = identity / baseline - 1.0
    benchmark.extra_info["no_adversary_overhead"] = overhead
    assert overhead < MAX_NO_ADVERSARY_OVERHEAD, (
        f"NoAdversary added {overhead:.1%} to the batch fast path "
        f"(allowed {MAX_NO_ADVERSARY_OVERHEAD:.0%})"
    )
