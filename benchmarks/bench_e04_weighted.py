"""E4 — Theorem 4.12: the weighted 2-spanner variant achieves O(log Delta).

Measured: spanner cost vs the exact weighted optimum, across weight spreads W
(the round bound is O(log n log (Delta W))), plus iteration counts.
"""

from common import fmt, print_table, record

from repro.core import WeightedVariant, run_two_spanner
from repro.graphs import (
    assign_weights_from_choices,
    connected_gnp_graph,
    log_max_degree,
)
from repro.spanner import is_k_spanner, minimum_k_spanner_exact, spanner_cost

SPREADS = [
    ("W=1 (uniform)", [1.0]),
    ("W=8", [1.0, 2.0, 8.0]),
    ("W=64", [1.0, 8.0, 64.0]),
    ("with zero weights", [0.0, 1.0, 4.0]),
]


def run_experiment():
    rows = []
    for name, choices in SPREADS:
        graph = connected_gnp_graph(13, 0.45, seed=3)
        assign_weights_from_choices(graph, choices, seed=4)
        result = run_two_spanner(graph, variant=WeightedVariant(), seed=5)
        assert is_k_spanner(graph, result.edges, 2)
        opt = minimum_k_spanner_exact(graph, 2, use_weights=True)
        opt_cost = max(1e-9, spanner_cost(graph, opt))
        ratio = result.cost(graph) / opt_cost if opt_cost > 1e-6 else 1.0
        rows.append(
            [name, fmt(opt_cost), fmt(result.cost(graph)), fmt(ratio),
             fmt(log_max_degree(graph)), result.iterations]
        )
    return rows


def test_e04_weighted_two_spanner(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E4  Theorem 4.12: weighted 2-spanner, cost vs exact optimum",
        ["weights", "opt cost", "alg cost", "ratio", "log2(Delta)", "iterations"],
        rows,
    )
    worst = max(float(r[3]) for r in rows)
    record(benchmark, worst_ratio=worst)
    assert worst <= 16 * max(float(r[4]) for r in rows)
