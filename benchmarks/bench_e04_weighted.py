"""E4 — Theorem 4.12: the weighted 2-spanner variant achieves O(log Delta).

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_spanner``, experiment ``E04``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e04_weighted_two_spanner(benchmark):
    bench_experiment(benchmark, "E04")
