"""E7 — Theorem 1.2: (1+eps)-approximate minimum k-spanner in the LOCAL model.

Measured: spanner size vs the exact optimum for a sweep of eps and k on small
graphs (the algorithm assumes unbounded local computation), plus the emulated
poly(log n / eps) round estimate.
"""

from common import fmt, print_table, record

from repro.core import one_plus_eps_spanner
from repro.graphs import connected_gnp_graph
from repro.spanner import is_k_spanner, minimum_k_spanner_exact

SWEEP = [
    (2, 1.0),
    (2, 0.5),
    (2, 0.25),
    (3, 0.5),
]


def run_experiment():
    rows = []
    graph = connected_gnp_graph(11, 0.4, seed=3)
    for k, eps in SWEEP:
        result = one_plus_eps_spanner(graph, k=k, epsilon=eps, seed=4)
        assert is_k_spanner(graph, result.edges, k)
        opt = len(minimum_k_spanner_exact(graph, k))
        rows.append(
            [f"k={k} eps={eps}", opt, result.size, fmt(result.size / opt),
             fmt(1 + eps), result.r, result.rounds_estimate]
        )
    return rows


def test_e07_one_plus_eps(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E7  Theorem 1.2: (1+eps)-approximation in LOCAL",
        ["setting", "opt", "alg size", "ratio", "1+eps", "r", "round estimate"],
        rows,
    )
    record(benchmark, worst_ratio=max(float(r[3]) for r in rows))
    for row in rows:
        assert float(row[3]) <= float(row[4]) + 0.15  # within (1+eps) up to integrality slack
