"""E7 — Theorem 1.2: (1+eps)-approximate minimum k-spanner in the LOCAL model.

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_spanner``, experiment ``E07``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e07_one_plus_eps(benchmark):
    bench_experiment(benchmark, "E07")
