"""E1 — Theorem 1.3: the distributed 2-spanner's approximation ratio is O(log m/n).

Measured: spanner size produced by the distributed algorithm divided by the
exact optimum (small graphs) or the LP lower bound (medium graphs), compared
with the paper's log2(m/n) yardstick, across graph families.
"""

from common import fmt, print_table, record

from repro.core import run_two_spanner
from repro.graphs import (
    cluster_graph,
    complete_graph,
    connected_gnp_graph,
    log_m_over_n,
    overlapping_stars_graph,
)
from repro.spanner import is_k_spanner, lp_lower_bound_2spanner, minimum_k_spanner_exact

SMALL_WORKLOADS = [
    ("gnp n=14 p=0.45", connected_gnp_graph(14, 0.45, seed=1)),
    ("gnp n=16 p=0.35", connected_gnp_graph(16, 0.35, seed=2)),
    ("cluster 3x4", cluster_graph(3, 4, seed=3)),
]
# For a complete graph the optimum is known analytically (a single full star,
# n-1 edges): any 2-spanner must be connected, and a star suffices.
CLIQUE_WORKLOADS = [("clique n=12", complete_graph(12))]
MEDIUM_WORKLOADS = [
    ("gnp n=40 p=0.25", connected_gnp_graph(40, 0.25, seed=4)),
    ("gnp n=60 p=0.15", connected_gnp_graph(60, 0.15, seed=5)),
    ("stars 4x6", overlapping_stars_graph(4, 6, 2, seed=6)),
]


def run_experiment():
    rows = []
    for name, graph in SMALL_WORKLOADS:
        result = run_two_spanner(graph, seed=11)
        assert is_k_spanner(graph, result.edges, 2)
        opt = len(minimum_k_spanner_exact(graph, 2))
        rows.append(
            [name, graph.number_of_edges(), opt, result.size,
             fmt(result.size / opt), fmt(log_m_over_n(graph)), "exact"]
        )
    for name, graph in CLIQUE_WORKLOADS:
        result = run_two_spanner(graph, seed=11)
        assert is_k_spanner(graph, result.edges, 2)
        opt = graph.number_of_nodes() - 1
        rows.append(
            [name, graph.number_of_edges(), opt, result.size,
             fmt(result.size / opt), fmt(log_m_over_n(graph)), "analytic (n-1)"]
        )
    for name, graph in MEDIUM_WORKLOADS:
        result = run_two_spanner(graph, seed=11)
        assert is_k_spanner(graph, result.edges, 2)
        lp = max(1.0, lp_lower_bound_2spanner(graph))
        rows.append(
            [name, graph.number_of_edges(), fmt(lp), result.size,
             fmt(result.size / lp), fmt(log_m_over_n(graph)), "LP bound"]
        )
    return rows


def test_e01_two_spanner_ratio(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E1  Theorem 1.3: distributed 2-spanner approximation ratio",
        ["workload", "m", "opt/LP", "alg size", "ratio", "log2(m/n)", "baseline"],
        rows,
    )
    worst = max(float(r[4]) for r in rows)
    record(benchmark, worst_ratio=worst, rows=len(rows))
    # The paper's guarantee: ratio = O(log m/n).  Constant 16 is the empirical envelope.
    for row in rows:
        assert float(row[4]) <= 16 * max(1.0, float(row[5]))
