"""E1 — Theorem 1.3: the distributed 2-spanner's approximation ratio is O(log m/n).

Workloads, invariants and table live in the scenario registry
(``repro.experiments.defs_spanner``, experiment ``E01``); this file is the
pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e01_two_spanner_ratio(benchmark):
    bench_experiment(benchmark, "E01")
