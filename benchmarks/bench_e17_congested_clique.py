"""E17 — Congested Clique 2-spanner vs the paper's CONGEST 2-spanner.

The O(log n)-round clique workload is compared against the CONGEST
algorithm (run non-enforcing, so oversized messages are recorded rather
than rejected) on both simulator engines.  Scenarios, engine-equality and
round-count invariants live in the scenario registry
(``repro.experiments.defs_substrate``, experiment ``E17``); this file is
the pytest-benchmark wrapper.
"""

from repro.experiments import bench_experiment


def test_e17_congested_clique(benchmark):
    bench_experiment(benchmark, "E17")
