"""E17 — Congested Clique 2-spanner vs the paper's CONGEST 2-spanner.

The Congested Clique workload (Parter-Yogev-style hitting-set sampling,
``core/clique_two_spanner.py``) finishes in exactly ``2*ceil(log2 n) + 2``
rounds with O(log n)-bit messages, where the paper's algorithm — run under a
non-enforcing CONGEST policy so its oversized LOCAL messages are *recorded*
rather than rejected — pays hundreds of rounds and per-link bandwidth
violations.  The experiment reports rounds, total bits, spanner size and the
violation count side by side, on both simulator engines, and verifies:

* the clique output is a valid 2-spanner of every instance;
* its round count stays within ``C_LOG * log2(n)`` (the O(log n) claim);
* both engines produce identical physics.
"""

import math

from common import print_table, record

from repro.core import clique_spanner_round_bound, run_clique_two_spanner, run_two_spanner
from repro.distributed import congest_model
from repro.graphs import gnp_random_graph
from repro.spanner import is_k_spanner

INSTANCES = [(48, 0.20, 3), (96, 0.20, 5)]
RUN_SEED = 2
C_LOG = 3  # rounds <= C_LOG * log2(n): holds since 2*ceil(log2 n)+2 <= 3*log2 n for n >= 16


def run_experiment():
    out = []
    for n, p, graph_seed in INSTANCES:
        graph = gnp_random_graph(n, p, seed=graph_seed)
        clique = {}
        for engine in ("indexed", "reference"):
            result = run_clique_two_spanner(graph, seed=RUN_SEED, engine=engine)
            assert is_k_spanner(graph, result.edges, 2), f"invalid 2-spanner (n={n}, {engine})"
            assert result.rounds <= C_LOG * math.log2(n), (
                f"clique spanner used {result.rounds} rounds on n={n}; "
                f"bound is {C_LOG}*log2(n) = {C_LOG * math.log2(n):.1f}"
            )
            assert result.rounds == clique_spanner_round_bound(n)
            clique[engine] = result
        assert clique["indexed"].edges == clique["reference"].edges
        assert clique["indexed"].metrics.as_dict() == clique["reference"].metrics.as_dict()

        congest = run_two_spanner(
            graph, seed=RUN_SEED, model=congest_model(n, enforce=False)
        )
        assert is_k_spanner(graph, congest.edges, 2)
        out.append({"n": n, "p": p, "m": graph.number_of_edges(),
                    "clique": clique["indexed"], "congest": congest})
    return out


def test_e17_congested_clique(benchmark):
    rows_data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for item in rows_data:
        clique, congest = item["clique"], item["congest"]
        for label, result in (("clique", clique), ("congest", congest)):
            metrics = result.metrics.as_dict()
            rows.append([
                item["n"], item["m"], label, result.rounds, len(result.edges),
                metrics["bits_sent"], metrics["bandwidth_violations"],
            ])
    print_table(
        "E17  Congested Clique vs CONGEST 2-spanner (G(n, p), both fixed-seed)",
        ["n", "m", "model", "rounds", "spanner edges", "bits", "violations"],
        rows,
    )
    record(
        benchmark,
        instances=[
            {
                "n": item["n"],
                "p": item["p"],
                "m": item["m"],
                "clique_rounds": item["clique"].rounds,
                "clique_edges": len(item["clique"].edges),
                "clique_metrics": item["clique"].metrics.as_dict(),
                "congest_rounds": item["congest"].rounds,
                "congest_edges": len(item["congest"].edges),
                "congest_metrics": item["congest"].metrics.as_dict(),
            }
            for item in rows_data
        ],
    )
    for item in rows_data:
        # The whole point of the clique model: exponentially fewer rounds.
        assert item["clique"].rounds < item["congest"].rounds
