"""Quickstart: build a graph, run the distributed 2-spanner algorithm, verify it.

Run with:  python examples/quickstart.py
"""

from repro import (
    connected_gnp_graph,
    greedy_two_spanner,
    is_k_spanner,
    run_two_spanner,
)
from repro.graphs import log_m_over_n
from repro.spanner import lp_lower_bound_2spanner, stretch_of


def main() -> None:
    # A moderately dense random communication network.
    graph = connected_gnp_graph(60, 0.25, seed=7)
    print(f"graph: n={graph.number_of_nodes()} m={graph.number_of_edges()} "
          f"max degree={graph.max_degree()}")

    # Run the paper's distributed algorithm (Theorem 1.3) on the LOCAL simulator.
    result = run_two_spanner(graph, seed=1)
    assert is_k_spanner(graph, result.edges, 2), "output must be a 2-spanner"
    print(f"distributed 2-spanner: {result.size} edges, "
          f"{result.iterations} iterations, {result.rounds} simulated rounds")
    print(f"achieved stretch: {stretch_of(graph, result.edges)}")

    # Compare with the sequential greedy baseline it is designed to match ...
    greedy = greedy_two_spanner(graph, method="peeling")
    print(f"Kortsarz-Peleg greedy baseline: {len(greedy)} edges")

    # ... and with an LP lower bound on the optimum.
    lp = lp_lower_bound_2spanner(graph)
    print(f"LP lower bound on OPT: {lp:.1f}  "
          f"(ratio <= {result.size / lp:.2f}, paper bound is O(log m/n) with "
          f"log2(m/n) = {log_m_over_n(graph):.2f})")


if __name__ == "__main__":
    main()
