"""Why CONGEST cannot approximate directed spanners fast: the Figure 1 reduction, live.

This example builds the paper's lower-bound graph G(ell, beta) from a 2-party
set-disjointness instance, shows the spanner-size gap between disjoint and
intersecting inputs (Lemma 2.3), and runs the Alice/Bob simulation measuring
how many bits any CONGEST algorithm must push across the Theta(ell)-edge cut
— the mechanism behind Theorem 1.1's Omega(sqrt(n)/(sqrt(alpha) log n)) bound.

Run with:  python examples/lower_bound_demo.py
"""

from repro import build_construction_g, random_disjoint_instance, random_intersecting_instance, simulate_reduction
from repro.lowerbounds import (
    claim_2_2_holds,
    disjoint_case_spanner,
    minimum_required_d_edges,
    theorem_1_1_parameters,
)
from repro.spanner import is_k_spanner_directed


def main() -> None:
    ell, beta = theorem_1_1_parameters(n_target=700, alpha=1.0)
    n_bits = ell * ell
    print(f"construction parameters from Theorem 1.1: ell={ell}, beta={beta} "
          f"(inputs of {n_bits} bits)")

    for label, instance in (
        ("disjoint inputs", random_disjoint_instance(n_bits, seed=1)),
        ("intersecting inputs", random_intersecting_instance(n_bits, 1, seed=2)),
    ):
        cg = build_construction_g(ell, beta, instance)
        claim = all(claim_2_2_holds(cg, i, r) for i in range(1, ell + 1) for r in range(1, ell + 1))
        sparse = disjoint_case_spanner(cg)
        forced = minimum_required_d_edges(cg)
        print(f"\n--- {label} ---")
        print(f"graph: n={cg.n}, dense component D has {len(cg.d_edges)} arcs, "
              f"Alice/Bob cut has {len(cg.cut_edges())} arcs; Claim 2.2 holds: {claim}")
        if instance.is_disjoint():
            print(f"sparse 5-spanner avoiding D: {len(sparse)} arcs "
                  f"(<= c*ell*beta = {cg.sparse_spanner_bound()}), "
                  f"valid: {is_k_spanner_directed(cg.graph, sparse, 5)}")
        else:
            print(f"every 5-spanner must contain {forced} arcs of D "
                  f"(>= beta^2 = {beta**2} per conflicting index pair)")

        report = simulate_reduction(cg, alpha=1.0)
        print(f"Alice/Bob simulation of a reference CONGEST protocol: "
              f"{report.rounds} rounds, {report.cut_bits} bits across the cut "
              f"(set disjointness needs Omega(N) = {report.disjointness_bits_needed} bits)")
        print(f"implied round lower bound N/(cut * O(log n)) = "
              f"{report.implied_rounds_lower_bound:.2f}; decision correct: {report.decision_correct}")


if __name__ == "__main__":
    main()
