"""Cluster-head election with the guaranteed O(log Delta) MDS algorithm (Section 5).

Sensor-network style scenario: pick a small set of cluster heads so that every
node has a head in its closed neighbourhood.  The paper's CONGEST algorithm
guarantees its O(log Delta) ratio on every run, unlike earlier algorithms
whose ratio holds only in expectation — this example shows the size spread of
both over repeated runs.

Run with:  python examples/clusterhead_election.py
"""

import statistics

from repro import expectation_randomized_mds, greedy_dominating_set, run_mds
from repro.graphs import barabasi_albert_graph, is_dominating_set


def main() -> None:
    # A scale-free sensor field: hubs with large degree, many leaves.
    field = barabasi_albert_graph(150, 2, seed=9)
    print(f"sensor field: n={field.number_of_nodes()} nodes, "
          f"m={field.number_of_edges()} radio links, max degree={field.max_degree()}")

    greedy = greedy_dominating_set(field)
    print(f"sequential greedy baseline: {len(greedy)} cluster heads")

    paper_sizes = []
    expectation_sizes = []
    for seed in range(8):
        result = run_mds(field, seed=seed)
        assert is_dominating_set(field, result.dominators)
        paper_sizes.append(result.size)
        expectation_sizes.append(len(expectation_randomized_mds(field, seed=seed)))

    print(f"paper's guaranteed-ratio algorithm over 8 runs: "
          f"min={min(paper_sizes)} mean={statistics.mean(paper_sizes):.1f} max={max(paper_sizes)}")
    print(f"expectation-only baseline over 8 runs:          "
          f"min={min(expectation_sizes)} mean={statistics.mean(expectation_sizes):.1f} "
          f"max={max(expectation_sizes)}")

    last = run_mds(field, seed=0)
    print(f"CONGEST footprint of one run: {last.rounds} rounds, "
          f"largest message {last.metrics.max_message_bits} bits, "
          f"bandwidth violations: {last.metrics.bandwidth_violations}")


if __name__ == "__main__":
    main()
