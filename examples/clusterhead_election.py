"""Cluster-head election in the broadcast-CONGEST model.

Sensor-network style scenario: pick a small set of cluster heads so that every
node has a head in its closed neighbourhood.  Radio is a shared medium — a
sensor cannot address one neighbour without every other neighbour overhearing
— which is exactly the *broadcast-CONGEST* model: one identical O(log n)-bit
payload to all neighbours per round, enforced by the simulator's admission
policy (a targeted ``ctx.send`` raises ``MessageAdmissionError``).

The election is a greedy-flavoured local-maxima rule: every sensor
broadcasts its *priority* — how many uncovered sensors its promotion would
cover, with a random rank as tiebreak — and an uncovered sensor whose
priority beats every uncovered neighbour's promotes itself to cluster head,
covering its neighbourhood.  The result is compared against the paper's
guaranteed-ratio CONGEST MDS algorithm (Section 5) and the sequential
greedy baseline.

Run with:  PYTHONPATH=src python examples/clusterhead_election.py
"""

from repro import run_mds
from repro.baselines import greedy_dominating_set
from repro.distributed import BroadcastNodeProgram, broadcast_congest_model, run_program
from repro.graphs import barabasi_albert_graph, is_dominating_set


class BroadcastClusterheadProgram(BroadcastNodeProgram):
    """Greedy-priority clusterhead election using only per-round broadcasts.

    Each round's single payload is ``(priority, is_head, is_covered)`` where
    ``priority = (uncovered closed-neighbourhood size, rank)``; promotions
    compare the priorities everyone broadcast in the *same* round, so
    adjacent sensors never promote simultaneously.  A node halts once it is
    covered, has announced that fact, and has heard that every neighbour is
    covered too.
    """

    def __init__(self):
        self.rank = None
        self.priority = None  # as last broadcast, what neighbours compare
        self.head = False
        self.covered = False
        self.heard_from = set()
        self.neighbor_covered = {}
        self.announced_covered = False

    def _gain(self):
        """Uncovered sensors a promotion would cover, by current knowledge."""
        return (0 if self.covered else 1) + sum(
            1 for cov in self.neighbor_covered.values() if not cov
        )

    def on_start(self, ctx):
        if not ctx.neighbors:
            self.head = True  # isolated sensor: its own cluster head
            ctx.set_output(True)
            ctx.halt()
            return
        self.rank = (ctx.rng.randrange(ctx.n**3), repr(ctx.node_id))
        self.neighbor_covered = {u: False for u in ctx.neighbors}
        self.priority = (self._gain(), self.rank)
        ctx.broadcast((self.priority, self.head, self.covered))

    def on_broadcast_round(self, ctx, heard):
        rivals = []
        for sender, (priority, is_head, is_covered) in heard.items():
            self.heard_from.add(sender)
            if is_head:
                self.covered = True
            if is_covered:
                self.neighbor_covered[sender] = True
            else:
                rivals.append(priority)

        # Promotion compares the priorities broadcast last round (mine
        # included), a consistent snapshot on both sides of every link.
        if (
            not self.covered
            and len(self.heard_from) == len(ctx.neighbors)
            and all(self.priority > rival for rival in rivals)
        ):
            self.head = True
            self.covered = True

        if self.covered and self.announced_covered and all(self.neighbor_covered.values()):
            ctx.set_output(self.head)
            ctx.halt()
            return
        if self.covered:
            self.announced_covered = True
        self.priority = (self._gain(), self.rank)
        ctx.broadcast((self.priority, self.head, self.covered))


def main() -> None:
    # A scale-free sensor field: hubs with large degree, many leaves.
    field = barabasi_albert_graph(150, 2, seed=9)
    print(f"sensor field: n={field.number_of_nodes()} nodes, "
          f"m={field.number_of_edges()} radio links, max degree={field.max_degree()}")

    greedy = greedy_dominating_set(field)
    print(f"sequential greedy baseline: {len(greedy)} cluster heads")

    n = field.number_of_nodes()
    broadcast_sizes = []
    for seed in range(8):
        result = run_program(
            field,
            lambda v: BroadcastClusterheadProgram(),
            model=broadcast_congest_model(n),
            seed=seed,
        )
        heads = {v for v, is_head in result.outputs.items() if is_head}
        assert is_dominating_set(field, heads)
        broadcast_sizes.append(len(heads))

    paper_sizes = [run_mds(field, seed=seed).size for seed in range(8)]
    print(f"broadcast-CONGEST local-maxima election over 8 runs: "
          f"min={min(broadcast_sizes)} mean={sum(broadcast_sizes) / 8:.1f} "
          f"max={max(broadcast_sizes)}")
    print(f"paper's guaranteed-ratio CONGEST MDS:        "
          f"min={min(paper_sizes)} mean={sum(paper_sizes) / 8:.1f} max={max(paper_sizes)}")

    last = run_program(
        field,
        lambda v: BroadcastClusterheadProgram(),
        model=broadcast_congest_model(n),
        seed=0,
    )
    metrics = last.metrics.as_dict()
    print(f"broadcast-CONGEST footprint of one run: {last.rounds} rounds, "
          f"{metrics['broadcast_payloads']} broadcast payloads, "
          f"largest message {metrics['max_message_bits']} bits, "
          f"bandwidth violations: {metrics['bandwidth_violations']}")


if __name__ == "__main__":
    main()
