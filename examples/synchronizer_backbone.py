"""Network-synchroniser backbone: spanners as sparse communication overlays.

The paper's introduction motivates spanners with synchronisation and compact
routing: replacing the full topology by a 2-spanner keeps every pair of
original neighbours within two hops while maintaining far fewer links.  This
example builds a clustered "data-centre" style topology, computes overlays
with the paper's distributed algorithm and with Baswana-Sen sparse spanners,
and reports the per-link maintenance saving versus the stretch actually paid.

Run with:  python examples/synchronizer_backbone.py
"""

from repro import baswana_sen_spanner, run_two_spanner
from repro.core import TwoSpannerOptions
from repro.graphs import cluster_graph
from repro.spanner import is_k_spanner, stretch_of


def overlay_report(name: str, graph, edges) -> None:
    saving = 100.0 * (1 - len(edges) / graph.number_of_edges())
    print(f"{name:>28}: {len(edges):4d} links kept "
          f"({saving:5.1f}% fewer than the full mesh), "
          f"worst stretch {stretch_of(graph, edges):.0f}")


def main() -> None:
    # 6 racks of 10 machines: dense inside a rack, sparse between racks.
    graph = cluster_graph(n_clusters=6, cluster_size=10, p_intra=0.8, p_inter=0.03, seed=3)
    print(f"topology: n={graph.number_of_nodes()} machines, "
          f"m={graph.number_of_edges()} links, max degree={graph.max_degree()}")

    # The paper's distributed minimum 2-spanner approximation: each machine
    # decides which of its incident links to keep after O(log n log Delta)
    # LOCAL rounds; neighbours stay within 2 hops.
    result = run_two_spanner(graph, seed=1, options=TwoSpannerOptions(densest_method="peeling"))
    assert is_k_spanner(graph, result.edges, 2)
    overlay_report("minimum 2-spanner (paper)", graph, result.edges)
    print(f"{'':>30}{result.iterations} iterations, {result.rounds} simulated rounds")

    # Worst-case-sparsity alternative: Baswana-Sen (2k-1)-spanners trade
    # stretch for sparsity but give no guarantee relative to the *minimum*.
    for k in (2, 3):
        spanner = baswana_sen_spanner(graph, k=k, seed=k)
        assert is_k_spanner(graph, spanner, 2 * k - 1)
        overlay_report(f"Baswana-Sen stretch {2 * k - 1}", graph, spanner)

    # The trivial overlay: keep everything (the n-approximation of the paper's
    # lower-bound discussion).
    overlay_report("full mesh", graph, graph.edge_set())


if __name__ == "__main__":
    main()
