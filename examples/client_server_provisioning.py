"""Client-server spanner: provisioning backbone links for customer demands.

In the client-server 2-spanner problem (paper Sections 1.5 and 4.3.3) the
*client* edges are communication demands that must be served within two hops
and the *server* edges are links the operator is allowed to provision.  This
example provisions a random demand set over a metro network, compares the
paper's distributed algorithm with the sequential greedy and the exact
optimum, and shows the weighted variant picking cheap links.

Run with:  python examples/client_server_provisioning.py
"""

from repro import (
    WeightedVariant,
    assign_random_weights,
    client_server_two_spanner,
    connected_gnp_graph,
    is_client_server_2_spanner,
    random_split_instance,
    run_two_spanner,
)
from repro.baselines import greedy_client_server_two_spanner
from repro.spanner import is_k_spanner, minimum_client_server_2_spanner_exact


def main() -> None:
    # --- client-server provisioning -------------------------------------
    metro = connected_gnp_graph(16, 0.45, seed=11)
    instance = random_split_instance(metro, client_fraction=0.7, server_fraction=0.7, seed=12)
    print(f"metro network: n={metro.number_of_nodes()} m={metro.number_of_edges()}; "
          f"{len(instance.clients)} demands, {len(instance.servers)} provisionable links")

    distributed = client_server_two_spanner(instance, seed=1)
    assert is_client_server_2_spanner(instance, distributed.edges)
    greedy = greedy_client_server_two_spanner(instance)
    exact = minimum_client_server_2_spanner_exact(instance)
    print(f"links provisioned  -> distributed: {distributed.size}, "
          f"greedy: {len(greedy)}, exact optimum: {len(exact)}")

    # --- weighted variant: prefer cheap links ----------------------------
    priced = connected_gnp_graph(18, 0.4, seed=13)
    assign_random_weights(priced, 1, 9, seed=14, integer=True)
    weighted = run_two_spanner(priced, variant=WeightedVariant(), seed=2)
    assert is_k_spanner(priced, weighted.edges, 2)
    total = sum(priced.weight(u, v) for u, v in priced.edges())
    print(f"weighted 2-spanner: cost {weighted.cost(priced):.0f} of {total:.0f} total "
          f"({weighted.size} of {priced.number_of_edges()} links), "
          f"{weighted.iterations} iterations")


if __name__ == "__main__":
    main()
